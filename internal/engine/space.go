package engine

import (
	"fmt"
	"sync"

	"xpointdb/internal/throttle"
	"xpointdb/internal/vfs"
)

// Disk-space budget management (RocksDB's SstFileManager analog).
//
// A SpaceManager tracks the live bytes of every SST, WAL and MANIFEST
// file an engine (or a set of sharded engines) holds on disk, plus
// headroom reservations for in-flight background jobs, against
// Options.MaxAllowedSpace. Three mechanisms hang off the accounting:
//
//   - The degradation ladder: as free space shrinks below
//     FreeSpaceThreshold (then half of it), the write controller is
//     escalated Delayed → Stopped — foreground writes slow and then
//     stop while reads keep serving, and the remaining threshold slack
//     is left for background reclamation to work in. ENOSPC is the
//     outcome the ladder exists to prevent.
//   - Reservations: flush and compaction jobs reserve their projected
//     output bytes before running and are deferred (not failed) while
//     the budget cannot cover them.
//   - Wait-for-space recovery (recovery.go): when a disk-full error
//     latches anyway — a real ENOSPC or an injected quota squeeze —
//     the recovery worker reclaims obsolete files and polls for
//     headroom with a cheap probe before re-attempting the repair.
//
// One SpaceManager can be shared by every shard of a sharded store
// (Options.SpaceManager), so a hot shard consumes headroom all shards
// observe; per-file keys are namespaced by StallSource to keep equal
// file names from colliding across shards.

// SpaceManager tracks live file bytes and reservations against a byte
// budget. The zero value is not usable; create one with
// NewSpaceManager.
type SpaceManager struct {
	mu        sync.Mutex
	budget    int64   // 0 = unlimited
	threshold float64 // free fraction where the ladder engages
	files     map[string]int64
	used      int64
	reserved  int64
	state     throttle.State
	subs      map[int]func(throttle.State)
	nextSub   int
}

// NewSpaceManager returns a manager enforcing budget bytes (0 =
// unlimited) with the given free-space threshold fraction (<=0 means
// the 0.1 default).
func NewSpaceManager(budget int64, freeThreshold float64) *SpaceManager {
	if freeThreshold <= 0 {
		freeThreshold = 0.1
	}
	return &SpaceManager{
		budget:    budget,
		threshold: freeThreshold,
		files:     make(map[string]int64),
		subs:      make(map[int]func(throttle.State)),
	}
}

// SetBudget adjusts the byte budget at runtime (0 = unlimited).
// Growing it can clear a space stall immediately: subscribers are
// notified of the resulting ladder state.
func (sm *SpaceManager) SetBudget(bytes int64) {
	sm.mu.Lock()
	sm.budget = bytes
	sm.notifyLocked()
}

// Budget returns the current byte budget (0 = unlimited).
func (sm *SpaceManager) Budget() int64 {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	return sm.budget
}

// Used returns the tracked live file bytes.
func (sm *SpaceManager) Used() int64 {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	return sm.used
}

// Reserved returns the bytes reserved by in-flight background jobs.
func (sm *SpaceManager) Reserved() int64 {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	return sm.reserved
}

// State returns the current degradation-ladder state.
func (sm *SpaceManager) State() throttle.State {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	return sm.stateLocked()
}

// stateLocked computes the ladder state: with budget b and threshold
// t, free space below b·t delays writes and below b·t/2 stops them —
// the paper's two-stage throttling keyed on space instead of L0 depth.
// Reservations count as consumed: a job's projected output is space
// the foreground can no longer have.
func (sm *SpaceManager) stateLocked() throttle.State {
	if sm.budget <= 0 {
		return throttle.StateClear
	}
	free := sm.budget - sm.used - sm.reserved
	slow := int64(float64(sm.budget) * sm.threshold)
	switch {
	case free <= slow/2:
		return throttle.StateStopped
	case free <= slow:
		return throttle.StateDelayed
	default:
		return throttle.StateClear
	}
}

// notifyLocked recomputes the ladder state and, on a change, calls
// every subscriber after releasing sm.mu (subscribers take engine
// locks). Callers hold sm.mu; it is released on return.
func (sm *SpaceManager) notifyLocked() {
	s := sm.stateLocked()
	if s == sm.state {
		sm.mu.Unlock()
		return
	}
	sm.state = s
	fns := make([]func(throttle.State), 0, len(sm.subs))
	for _, fn := range sm.subs {
		fns = append(fns, fn)
	}
	sm.mu.Unlock()
	for _, fn := range fns {
		fn(s)
	}
}

// subscribe registers fn to be called (without sm.mu held) whenever
// the ladder state changes; it returns an id for unsubscribe.
func (sm *SpaceManager) subscribe(fn func(throttle.State)) int {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	id := sm.nextSub
	sm.nextSub++
	sm.subs[id] = fn
	return id
}

func (sm *SpaceManager) unsubscribe(id int) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	delete(sm.subs, id)
}

// setFile records (or updates) the tracked size of one file.
func (sm *SpaceManager) setFile(key string, size int64) {
	sm.mu.Lock()
	sm.used += size - sm.files[key]
	sm.files[key] = size
	sm.notifyLocked()
}

// grow adds delta bytes to one tracked file (WAL/MANIFEST appends).
func (sm *SpaceManager) grow(key string, delta int64) {
	sm.mu.Lock()
	sm.files[key] += delta
	sm.used += delta
	sm.notifyLocked()
}

// untrack drops a deleted file from the accounting.
func (sm *SpaceManager) untrack(key string) {
	sm.mu.Lock()
	if size, ok := sm.files[key]; ok {
		sm.used -= size
		delete(sm.files, key)
	}
	sm.notifyLocked()
}

// TrackFile records the size of an externally-owned file (a sharded
// store's coordinator log, for example) under key. Sharers must prefix
// keys with their own namespace — engines use "s<shard>/".
func (sm *SpaceManager) TrackFile(key string, size int64) { sm.setFile(key, size) }

// GrowFile adds delta appended bytes to an externally-owned file.
func (sm *SpaceManager) GrowFile(key string, delta int64) { sm.grow(key, delta) }

// UntrackFile drops a deleted externally-owned file.
func (sm *SpaceManager) UntrackFile(key string) { sm.untrack(key) }

// TryReserve reserves headroom for a background job's projected
// output. It fails (so the job defers) when the budget cannot cover
// it; a successful reservation must be paired with Release.
func (sm *SpaceManager) TryReserve(bytes int64) bool {
	sm.mu.Lock()
	if sm.budget > 0 && sm.used+sm.reserved+bytes > sm.budget {
		sm.mu.Unlock()
		return false
	}
	sm.reserved += bytes
	sm.notifyLocked()
	return true
}

// Release returns a reservation taken with TryReserve.
func (sm *SpaceManager) Release(bytes int64) {
	sm.mu.Lock()
	sm.reserved -= bytes
	if sm.reserved < 0 {
		sm.reserved = 0
	}
	sm.notifyLocked()
}

// ---------------------------------------------------------------------
// DB integration

// spaceKey namespaces a file name inside a (possibly shared)
// SpaceManager: shards allocate the same small file numbers, so equal
// names must not collide across sharers.
func (db *DB) spaceKey(name string) string {
	return fmt.Sprintf("s%d/%s", db.opts.StallSource, name)
}

func (db *DB) spaceTrack(name string, size int64) {
	if db.space != nil {
		db.space.setFile(db.spaceKey(name), size)
	}
}

func (db *DB) spaceGrow(name string, delta int64) {
	if db.space != nil {
		db.space.grow(db.spaceKey(name), delta)
	}
}

func (db *DB) spaceUntrack(name string) {
	if db.space != nil {
		db.space.untrack(db.spaceKey(name))
	}
}

// spaceStateChanged is the DB's SpaceManager subscription: it folds
// the ladder state into the stall computation and, on an entry into
// Stopped, arms the space-stall watchdog. Called without sm.mu or
// db.mu held.
func (db *DB) spaceStateChanged(s throttle.State) {
	db.mu.Lock()
	if !db.closed && db.spaceState != s {
		db.spaceState = s
		db.updateStallStateLocked()
		// Every transition bumps the epoch, disarming any watchdog
		// from a previous Stopped entry; entering Stopped arms a new
		// one against the fresh epoch.
		db.spaceStopEpoch++
		if s == throttle.StateStopped && db.opts.SpaceStallTimeout > 0 {
			epoch := db.spaceStopEpoch
			db.liveWorkers++
			db.clk.Go("space-watchdog", func() { db.spaceStallWatchdog(epoch) })
		}
	}
	db.mu.Unlock()
}

// spaceStallWatchdog bounds a space-Stopped write stall. A stopped
// ladder means foreground writes are parked AND background jobs cannot
// reserve headroom — so if nothing frees space on its own (another
// shard's delete, an operator budget raise), no amount of waiting ends
// the stall: it is a silent, permanent wedge. After SpaceStallTimeout
// of uninterrupted Stopped, the watchdog latches ErrMaxSpaceReached —
// a hard disk-full-class error — so stalled writers fail fast with
// ErrBackground, reads keep serving, and the wait-for-space recovery
// loop (which reclaims obsolete files and probes both the filesystem
// and the budget ladder) owns the healing. RocksDB surfaces the same
// condition as a max_allowed_space background error rather than an
// unbounded write stall.
func (db *DB) spaceStallWatchdog(epoch uint64) {
	defer func() {
		db.mu.Lock()
		db.liveWorkers--
		db.bgCond.Broadcast()
		db.mu.Unlock()
	}()
	if db.sleepRecoveryBackoff(db.opts.SpaceStallTimeout) {
		return // closed
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed || db.bgErr != nil ||
		db.spaceStopEpoch != epoch || db.spaceState != throttle.StateStopped {
		return // the stall ended (or something else already latched)
	}
	db.opts.logf("space budget exhausted: writers stopped for %v with no ladder transition (used=%d reserved=%d budget=%d)",
		db.opts.SpaceStallTimeout, db.space.Used(), db.space.Reserved(), db.space.Budget())
	db.setBackgroundErrorLocked(opSpaceStall, ErrMaxSpaceReached)
}

// seedSpaceAccounting records every pre-existing data and WAL file at
// open, so a reopened engine starts with accurate usage. Called from
// Open after recovery, before workers exist.
func (db *DB) seedSpaceAccounting() {
	if db.space == nil {
		return
	}
	seed := func(fs interface {
		List() ([]string, error)
		Size(string) (int64, error)
	}) {
		names, err := fs.List()
		if err != nil {
			return
		}
		for _, n := range names {
			if size, err := fs.Size(n); err == nil {
				db.spaceTrack(n, size)
			}
		}
	}
	seed(db.fs)
	if db.walFS != db.fs {
		seed(db.walFS)
	}
}

// spaceRemove deletes a file and drops it from the space accounting —
// the single chokepoint for engine file deletion.
func (db *DB) spaceRemove(fs interface{ Remove(string) error }, name string) error {
	err := fs.Remove(name)
	if err == nil {
		db.spaceUntrack(name)
	}
	return err
}

// reserveSpace blocks until bytes of headroom can be reserved (or the
// DB closes, returning false) — the deferred-not-failed policy for
// background jobs whose projected output would overrun the budget.
// Deferral polls with a timed sleep: reclamation, a budget raise, or
// another shard's delete can free headroom at any time. Call without
// db.mu; a true return must be paired with sm.Release(bytes).
func (db *DB) reserveSpace(bytes int64, job string) bool {
	if db.space == nil {
		return true
	}
	deferred := false
	for {
		db.mu.Lock()
		closed := db.closed
		db.mu.Unlock()
		if closed {
			return false
		}
		if db.space.TryReserve(bytes) {
			return true
		}
		if !deferred {
			deferred = true
			db.metrics.SpaceDeferrals.Add(1)
			db.opts.logf("%s deferred: %d B projected output over space budget (used=%d reserved=%d budget=%d)",
				job, bytes, db.space.Used(), db.space.Reserved(), db.space.Budget())
		}
		db.clk.Sleep(flushRetryBackoff)
	}
}

// spaceProbeName is the scratch file the wait-for-space poller writes
// to test for reclaimed headroom. The name parses as no engine file
// type, so directory sweeps ignore a leftover probe.
const spaceProbeName = "SPACEPROBE"

// spaceProbeBytes is the probe's payload: enough that a disk with no
// real headroom fails it, small enough to be free when space exists.
const spaceProbeBytes = 4096

// waitForSpaceOnce is one poll of the wait-for-space recovery path:
// aggressively reclaim everything the engine can free on its own
// (obsolete WALs, zombie SSTs, superseded manifests), then probe the
// filesystem for writable headroom. The space budget must have cleared
// its Stopped line too: a filesystem with room is useless while the
// engine's own ladder would re-stop the first write, so declaring the
// probe successful would only flap the latch. A non-nil return means
// space is still exhausted; the recovery loop's capped backoff
// schedules the next poll. Called without db.mu.
func (db *DB) waitForSpaceOnce() error {
	db.deleteObsoleteFiles()
	if db.space != nil && db.space.State() == throttle.StateStopped {
		return fmt.Errorf("engine: space probe: budget still exhausted (used=%d reserved=%d budget=%d): %w",
			db.space.Used(), db.space.Reserved(), db.space.Budget(), vfs.ErrNoSpace)
	}
	f, err := db.fs.Create(spaceProbeName)
	if err != nil {
		return fmt.Errorf("engine: space probe: %w", err)
	}
	_, werr := f.Write(make([]byte, spaceProbeBytes))
	serr := f.Sync()
	_ = f.Close()
	_ = db.fs.Remove(spaceProbeName)
	if werr != nil {
		return fmt.Errorf("engine: space probe write: %w", werr)
	}
	if serr != nil {
		return fmt.Errorf("engine: space probe sync: %w", serr)
	}
	return nil
}
