package engine

import (
	"fmt"
	"strings"
	"time"
)

// PerfContext is a per-operation latency breakdown — the equivalent of
// RocksDB's perf_context, scoped to the stages the paper attributes
// time to. Pass one to GetWithPerf / ApplyWithPerf to have the engine
// fill it in; fields accumulate across operations until Reset, so one
// context can profile a whole loop.
//
// The write stages partition Apply's end-to-end latency: an operation
// spends its time paying the Algorithm 1 throttle delay, waiting in
// the write queue, making room (memtable switches and stop stalls),
// appending and syncing the WAL, and inserting into the memtable. A
// batch-group follower's WAL work is done by its leader, so for
// followers the leader's WAL time shows up as WriteQueueWait — the
// stage sums still cover the end-to-end latency.
//
// The read stages partition Get: probing the mutable and immutable
// memtables, then Level-0 SSTs (every overlapping file — the paper's
// Finding #2 read amplification), then one file per deeper level.
// BlockReadTime isolates the portion of SST probe time spent on
// probes that missed the block cache.
type PerfContext struct {
	// Write path.
	ThrottleDelay  time.Duration // Algorithm 1 injected delay before queueing
	WriteQueueWait time.Duration // waiting in the write queue (followers: incl. leader's WAL work)
	WriteStall     time.Duration // leader's make-room time: stop stalls, memtable switch
	WALAppend      time.Duration // leader's group WAL append
	WALSync        time.Duration // leader's group WAL fsync
	MemtableInsert time.Duration // this writer's memtable application

	// Read path.
	MemtableProbe  time.Duration // mutable memtable search
	ImmutableProbe time.Duration // immutable memtable searches
	L0ProbeTime    time.Duration // Level-0 SST probes (incl. table-cache open)
	DeepProbeTime  time.Duration // Level-1+ SST probes
	BlockReadTime  time.Duration // portion of probe time on block-cache misses

	// Read-path counters.
	L0Probes         int // Level-0 SSTs probed
	DeepProbes       int // Level-1+ SSTs probed
	BloomChecks      int // Bloom filters consulted
	BloomSkips       int // probes short-circuited by a Bloom filter
	BlockCacheHits   int
	BlockCacheMisses int
}

// WriteStages returns the sum of the write-path stage durations.
func (pc *PerfContext) WriteStages() time.Duration {
	return pc.ThrottleDelay + pc.WriteQueueWait + pc.WriteStall +
		pc.WALAppend + pc.WALSync + pc.MemtableInsert
}

// ReadStages returns the sum of the read-path stage durations.
// BlockReadTime is not added: it is a sub-portion of the probe stages.
func (pc *PerfContext) ReadStages() time.Duration {
	return pc.MemtableProbe + pc.ImmutableProbe + pc.L0ProbeTime + pc.DeepProbeTime
}

// Reset zeroes every field.
func (pc *PerfContext) Reset() { *pc = PerfContext{} }

// diff returns the per-field difference pc − before (the cost of the
// operations performed between the two states).
func (pc *PerfContext) diff(before *PerfContext) PerfContext {
	return PerfContext{
		ThrottleDelay:  pc.ThrottleDelay - before.ThrottleDelay,
		WriteQueueWait: pc.WriteQueueWait - before.WriteQueueWait,
		WriteStall:     pc.WriteStall - before.WriteStall,
		WALAppend:      pc.WALAppend - before.WALAppend,
		WALSync:        pc.WALSync - before.WALSync,
		MemtableInsert: pc.MemtableInsert - before.MemtableInsert,

		MemtableProbe:  pc.MemtableProbe - before.MemtableProbe,
		ImmutableProbe: pc.ImmutableProbe - before.ImmutableProbe,
		L0ProbeTime:    pc.L0ProbeTime - before.L0ProbeTime,
		DeepProbeTime:  pc.DeepProbeTime - before.DeepProbeTime,
		BlockReadTime:  pc.BlockReadTime - before.BlockReadTime,

		L0Probes:         pc.L0Probes - before.L0Probes,
		DeepProbes:       pc.DeepProbes - before.DeepProbes,
		BloomChecks:      pc.BloomChecks - before.BloomChecks,
		BloomSkips:       pc.BloomSkips - before.BloomSkips,
		BlockCacheHits:   pc.BlockCacheHits - before.BlockCacheHits,
		BlockCacheMisses: pc.BlockCacheMisses - before.BlockCacheMisses,
	}
}

// String renders the non-zero stages.
func (pc *PerfContext) String() string {
	var b strings.Builder
	stage := func(name string, d time.Duration) {
		if d > 0 {
			fmt.Fprintf(&b, " %s=%v", name, d)
		}
	}
	stage("throttle", pc.ThrottleDelay)
	stage("queue", pc.WriteQueueWait)
	stage("stall", pc.WriteStall)
	stage("wal_append", pc.WALAppend)
	stage("wal_sync", pc.WALSync)
	stage("mem_insert", pc.MemtableInsert)
	stage("mem_probe", pc.MemtableProbe)
	stage("imm_probe", pc.ImmutableProbe)
	stage("l0_probe", pc.L0ProbeTime)
	stage("deep_probe", pc.DeepProbeTime)
	stage("block_read", pc.BlockReadTime)
	if pc.BloomChecks > 0 || pc.L0Probes > 0 || pc.DeepProbes > 0 {
		fmt.Fprintf(&b, " probes[l0=%d deep=%d bloom=%d/%d skipped]",
			pc.L0Probes, pc.DeepProbes, pc.BloomSkips, pc.BloomChecks)
	}
	if pc.BlockCacheHits > 0 || pc.BlockCacheMisses > 0 {
		fmt.Fprintf(&b, " cache[hit=%d miss=%d]", pc.BlockCacheHits, pc.BlockCacheMisses)
	}
	if b.Len() == 0 {
		return "perf{}"
	}
	return "perf{" + strings.TrimSpace(b.String()) + "}"
}
