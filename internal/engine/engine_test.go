package engine

import (
	"fmt"
	"testing"
	"time"

	"xpointdb/internal/batch"
	"xpointdb/internal/clock"
	"xpointdb/internal/sim"
	"xpointdb/internal/storage"
	"xpointdb/internal/throttle"
	"xpointdb/internal/vfs"
)

// newTestDB returns a DB on a zero-latency in-memory FS with the real
// clock and a small memtable so flushes and compactions actually occur.
func newTestDB(t *testing.T, tweak func(*Options)) (*DB, *vfs.MemFS) {
	t.Helper()
	dev := storage.New(clock.Real{}, storage.Null())
	fs := vfs.NewMem(dev)
	opts := DefaultOptions(fs)
	opts.MemtableSize = 64 << 10
	opts.TargetFileSize = 64 << 10
	opts.BaseLevelBytes = 256 << 10
	opts.ThrottleMode = throttle.ModeNone
	opts.SyncWAL = true // tests exercise the durable path
	if tweak != nil {
		tweak(&opts)
	}
	db, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return db, fs
}

func testKey(i int) []byte   { return []byte(fmt.Sprintf("key-%06d", i)) }
func testValue(i int) []byte { return []byte(fmt.Sprintf("value-%06d-%032d", i, i)) }

func TestPutGetSmoke(t *testing.T) {
	db, _ := newTestDB(t, nil)
	defer db.Close()

	if err := db.Put([]byte("hello"), []byte("world")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	v, err := db.Get([]byte("hello"))
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if string(v) != "world" {
		t.Fatalf("Get = %q, want world", v)
	}
	if _, err := db.Get([]byte("missing")); err != ErrNotFound {
		t.Fatalf("Get missing = %v, want ErrNotFound", err)
	}
}

func TestPutGetAcrossFlushes(t *testing.T) {
	db, _ := newTestDB(t, nil)
	defer db.Close()

	const n = 3000
	for i := 0; i < n; i++ {
		if err := db.Put(testKey(i), testValue(i)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	// Multiple memtables' worth of data must have been flushed.
	waitForFlush(t, db)
	for i := 0; i < n; i++ {
		v, err := db.Get(testKey(i))
		if err != nil {
			t.Fatalf("Get %d: %v (layout:\n%s)", i, err, db.DebugLayout())
		}
		if string(v) != string(testValue(i)) {
			t.Fatalf("Get %d = %q", i, v)
		}
	}
}

// waitForFlush blocks until no immutable memtables remain.
func waitForFlush(t *testing.T, db *DB) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		db.mu.Lock()
		n := len(db.imms)
		db.mu.Unlock()
		if n == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("flush never completed")
}

func TestOverwriteReturnsNewest(t *testing.T) {
	db, _ := newTestDB(t, nil)
	defer db.Close()
	key := []byte("k")
	for i := 0; i < 100; i++ {
		if err := db.Put(key, testValue(i)); err != nil {
			t.Fatal(err)
		}
	}
	v, err := db.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != string(testValue(99)) {
		t.Fatalf("Get = %q, want newest", v)
	}
}

func TestDeleteHidesKey(t *testing.T) {
	db, _ := newTestDB(t, nil)
	defer db.Close()

	if err := db.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("a")); err != ErrNotFound {
		t.Fatalf("Get after delete = %v, want ErrNotFound", err)
	}
}

func TestDeleteAcrossFlush(t *testing.T) {
	db, _ := newTestDB(t, nil)
	defer db.Close()

	// Write enough around the delete that the tombstone and the value
	// land in different SSTs.
	for i := 0; i < 1500; i++ {
		if err := db.Put(testKey(i), testValue(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Delete(testKey(700)); err != nil {
		t.Fatal(err)
	}
	for i := 1500; i < 3000; i++ {
		if err := db.Put(testKey(i), testValue(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitForFlush(t, db)
	if _, err := db.Get(testKey(700)); err != ErrNotFound {
		t.Fatalf("deleted key resurfaced: %v\n%s", err, db.DebugLayout())
	}
	if _, err := db.Get(testKey(701)); err != nil {
		t.Fatalf("neighbor key lost: %v", err)
	}
}

func TestBatchAtomicVisibility(t *testing.T) {
	db, _ := newTestDB(t, nil)
	defer db.Close()

	var b batch.Batch
	b.Put([]byte("x"), []byte("1"))
	b.Put([]byte("y"), []byte("2"))
	b.Delete([]byte("x"))
	if err := db.Apply(&b, true); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("x")); err != ErrNotFound {
		t.Fatalf("x should be deleted by the batch's own tombstone: %v", err)
	}
	v, err := db.Get([]byte("y"))
	if err != nil || string(v) != "2" {
		t.Fatalf("y = %q, %v", v, err)
	}
}

func TestIterSeesSortedUserKeys(t *testing.T) {
	db, _ := newTestDB(t, nil)
	defer db.Close()

	const n = 2500
	for i := n - 1; i >= 0; i-- {
		if err := db.Put(testKey(i), testValue(i)); err != nil {
			t.Fatal(err)
		}
	}
	db.Delete(testKey(10))
	it, err := db.NewIter()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	i := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		if i == 10 {
			i++ // deleted
		}
		if string(it.Key()) != string(testKey(i)) {
			t.Fatalf("iter key[%d] = %q, want %q", i, it.Key(), testKey(i))
		}
		if string(it.Value()) != string(testValue(i)) {
			t.Fatalf("iter value[%d] = %q", i, it.Value())
		}
		i++
	}
	if err := it.Error(); err != nil {
		t.Fatal(err)
	}
	if i != n {
		t.Fatalf("iterated %d keys, want %d", i, n)
	}
}

func TestIterSeekGE(t *testing.T) {
	db, _ := newTestDB(t, nil)
	defer db.Close()
	for i := 0; i < 100; i += 2 { // even keys only
		if err := db.Put(testKey(i), testValue(i)); err != nil {
			t.Fatal(err)
		}
	}
	it, err := db.NewIter()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	it.SeekGE(testKey(31))
	if !it.Valid() || string(it.Key()) != string(testKey(32)) {
		t.Fatalf("SeekGE(31) = %q, want key-000032", it.Key())
	}
}

func TestIterSnapshotIsolation(t *testing.T) {
	db, _ := newTestDB(t, nil)
	defer db.Close()
	db.Put([]byte("k"), []byte("old"))
	it, err := db.NewIter()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	db.Put([]byte("k"), []byte("new"))
	db.Put([]byte("k2"), []byte("after"))

	it.SeekToFirst()
	if !it.Valid() || string(it.Value()) != "old" {
		t.Fatalf("snapshot iter sees %q, want old", it.Value())
	}
	it.Next()
	if it.Valid() {
		t.Fatalf("snapshot iter sees key written after creation: %q", it.Key())
	}
}

func TestRecoveryFromWAL(t *testing.T) {
	db, fs := newTestDB(t, nil)
	const n = 500
	for i := 0; i < n; i++ {
		if err := db.Put(testKey(i), testValue(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen and verify everything survived.
	opts := DefaultOptions(fs)
	opts.MemtableSize = 64 << 10
	opts.ThrottleMode = throttle.ModeNone
	opts.SyncWAL = true
	db2, err := Open(opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	for i := 0; i < n; i++ {
		v, err := db2.Get(testKey(i))
		if err != nil {
			t.Fatalf("Get %d after recovery: %v", i, err)
		}
		if string(v) != string(testValue(i)) {
			t.Fatalf("Get %d = %q after recovery", i, v)
		}
	}
}

func TestRecoveryAfterCrash(t *testing.T) {
	db, fs := newTestDB(t, nil)
	const n = 800
	for i := 0; i < n; i++ {
		if err := db.Put(testKey(i), testValue(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a crash: clone the FS at its synced state without
	// closing the DB.
	crashed := fs.CrashClone()
	db.Close()

	opts := DefaultOptions(crashed)
	opts.MemtableSize = 64 << 10
	opts.ThrottleMode = throttle.ModeNone
	opts.SyncWAL = true
	db2, err := Open(opts)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer db2.Close()
	// Every synced write must be present (SyncWAL=true syncs each
	// commit, so all acknowledged writes survive).
	for i := 0; i < n; i++ {
		v, err := db2.Get(testKey(i))
		if err != nil {
			t.Fatalf("Get %d after crash: %v", i, err)
		}
		if string(v) != string(testValue(i)) {
			t.Fatalf("Get %d = %q after crash", i, v)
		}
	}
}

func TestCompactionReducesL0(t *testing.T) {
	db, _ := newTestDB(t, func(o *Options) {
		o.MemtableSize = 16 << 10
		o.TargetFileSize = 32 << 10
		o.BaseLevelBytes = 64 << 10
	})
	defer db.Close()

	for i := 0; i < 6000; i++ {
		if err := db.Put(testKey(i%2000), testValue(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Give background compaction a moment, then verify it ran and L0
	// stayed bounded.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if db.Metrics().Compactions.Load() > 0 && db.NumLevelFiles(0) < 8 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := db.Metrics().Compactions.Load(); got == 0 {
		t.Fatalf("no compactions ran; layout:\n%s", db.DebugLayout())
	}
	if l1 := db.NumLevelFiles(1); l1 == 0 {
		t.Fatalf("L1 empty after compactions; layout:\n%s", db.DebugLayout())
	}
	// All newest values must still be readable.
	for i := 0; i < 2000; i++ {
		if _, err := db.Get(testKey(i)); err != nil {
			t.Fatalf("Get %d after compaction: %v", i, err)
		}
	}
}

func TestConcurrentWriters(t *testing.T) {
	db, _ := newTestDB(t, nil)
	defer db.Close()

	const workers, per = 8, 300
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < per; i++ {
				if err := db.Put(testKey(w*per+i), testValue(w*per+i)); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < workers*per; i++ {
		if _, err := db.Get(testKey(i)); err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	db, _ := newTestDB(t, nil)
	defer db.Close()
	for i := 0; i < 500; i++ {
		db.Put(testKey(i), testValue(i))
	}
	done := make(chan error, 4)
	for w := 0; w < 2; w++ {
		go func(w int) {
			for i := 0; i < 500; i++ {
				if err := db.Put(testKey(500+w*500+i), testValue(i)); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
		go func() {
			for i := 0; i < 500; i++ {
				if _, err := db.Get(testKey(i)); err != nil {
					done <- fmt.Errorf("read %d: %w", i, err)
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestClosedDBErrors(t *testing.T) {
	db, _ := newTestDB(t, nil)
	db.Close()
	if err := db.Put([]byte("a"), []byte("b")); err != ErrClosed {
		t.Fatalf("Put on closed = %v", err)
	}
	if _, err := db.Get([]byte("a")); err != ErrClosed {
		t.Fatalf("Get on closed = %v", err)
	}
	if err := db.Close(); err != ErrClosed {
		t.Fatalf("double Close = %v", err)
	}
}

func TestDisableWAL(t *testing.T) {
	db, _ := newTestDB(t, func(o *Options) { o.DisableWAL = true })
	defer db.Close()
	for i := 0; i < 2000; i++ {
		if err := db.Put(testKey(i), testValue(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2000; i++ {
		if _, err := db.Get(testKey(i)); err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
	}
}

func TestNonPipelinedWrites(t *testing.T) {
	db, _ := newTestDB(t, func(o *Options) { o.PipelinedWrites = false })
	defer db.Close()
	const workers, per = 4, 200
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < per; i++ {
				if err := db.Put(testKey(w*per+i), testValue(i)); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < workers*per; i++ {
		if _, err := db.Get(testKey(i)); err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
	}
}

func TestWALOnSeparateFS(t *testing.T) {
	dataDev := storage.New(clock.Real{}, storage.Null())
	walDev := storage.New(clock.Real{}, storage.Null())
	dataFS := vfs.NewMem(dataDev)
	walFS := vfs.NewMem(walDev)
	opts := DefaultOptions(dataFS)
	opts.WALFS = walFS
	opts.MemtableSize = 64 << 10
	opts.SyncWAL = true // force WAL device traffic per commit
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := db.Put(testKey(i), testValue(i)); err != nil {
			t.Fatal(err)
		}
	}
	// WAL traffic must have hit the WAL device, not the data device.
	if walDev.Stats().Writes == 0 {
		t.Fatal("no writes reached the WAL device")
	}
	names, _ := walFS.List()
	foundLog := false
	for _, n := range names {
		if len(n) > 4 && n[len(n)-4:] == ".log" {
			foundLog = true
		}
	}
	if !foundLog {
		t.Fatalf("no .log file on WAL FS: %v", names)
	}
	db.Close()
}

// TestSimulatedEngine runs the whole engine under the virtual-time
// kernel with a real device profile and checks that virtual time
// advanced commensurately with device work.
func TestSimulatedEngine(t *testing.T) {
	k := sim.New(time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC))
	dev := storage.New(k, storage.XPoint())
	fs := vfs.NewMem(dev)

	k.Run(func() {
		opts := DefaultOptions(fs)
		opts.Clock = k
		opts.MemtableSize = 64 << 10
		db, err := Open(opts)
		if err != nil {
			t.Errorf("Open: %v", err)
			return
		}
		for i := 0; i < 1000; i++ {
			if err := db.Put(testKey(i), testValue(i)); err != nil {
				t.Errorf("Put: %v", err)
				return
			}
		}
		for i := 0; i < 1000; i++ {
			if _, err := db.Get(testKey(i)); err != nil {
				t.Errorf("Get %d: %v", i, err)
				return
			}
		}
		if err := db.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	if k.Elapsed() <= 0 {
		t.Fatal("virtual time did not advance")
	}
	if dev.Stats().Writes == 0 {
		t.Fatal("no device writes recorded")
	}
	t.Logf("virtual time: %v, device: %v", k.Elapsed(), dev.Stats())
}
