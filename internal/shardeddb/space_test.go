package shardeddb

import (
	"errors"
	"testing"
	"time"

	"xpointdb/internal/batch"
	"xpointdb/internal/clock"
	"xpointdb/internal/engine"
	"xpointdb/internal/faultfs"
	"xpointdb/internal/storage"
	"xpointdb/internal/throttle"
	"xpointdb/internal/vfs"
)

// TestShardedRejectsCallerSpaceManager pins the shared-resource
// ownership rule: the sharded layer creates the one SpaceManager all
// shards charge, so a caller-supplied one is a configuration error.
func TestShardedRejectsCallerSpaceManager(t *testing.T) {
	fs := vfs.NewMem(storage.New(clock.Real{}, storage.Null()))
	opts := testOptions(fs, 2, nil)
	opts.Engine.SpaceManager = engine.NewSpaceManager(1<<30, 0)
	if _, err := Open(opts); err == nil {
		t.Fatal("Open accepted a caller-set Engine.SpaceManager")
	}
}

// TestShardedSharedSpaceBudget is the one-budget-many-shards contract:
// bytes written through ANY shard consume the single shared budget, a
// squeeze to zero free space stops writes on EVERY shard — including a
// cross-shard atomic batch mid-submission — while reads keep serving,
// and a budget raise releases them all with the batch committing
// atomically.
func TestShardedSharedSpaceBudget(t *testing.T) {
	db, _ := newTestStore(t, 4, func(o *Options) {
		o.Engine.MaxAllowedSpace = 1 << 30
	})
	defer db.Close()

	sm := db.SpaceManager()
	if sm == nil {
		t.Fatal("SpaceManager() = nil with MaxAllowedSpace set")
	}
	for s := 0; s < 4; s++ {
		if got := db.Shard(s).SpaceManager(); got != sm {
			t.Fatalf("shard %d has a private SpaceManager", s)
		}
	}

	// Load only shard 0: the hot shard's bytes drain the shared budget.
	for i := 0; i < 100; i++ {
		if err := db.Put(shardKey(0, db, i), shardKey(0, db, i)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if sm.Used() == 0 {
		t.Fatal("shared budget saw no usage from shard 0's writes")
	}

	// Squeeze to exactly current consumption: free space is zero, the
	// ladder reads Stopped, and every shard observes it.
	sm.SetBudget(sm.Used() + sm.Reserved())
	if s := sm.State(); s != throttle.StateStopped {
		t.Fatalf("ladder after squeeze = %v, want Stopped", s)
	}

	// A cross-shard atomic batch stalls (writes stopped everywhere) —
	// it must neither fail nor commit partially.
	b := new(batch.Batch)
	for s := 0; s < 4; s++ {
		b.Put(shardKey(s, db, 9999), []byte("atomic"))
	}
	applied := make(chan error, 1)
	go func() { applied <- db.Apply(b, true) }()
	select {
	case err := <-applied:
		t.Fatalf("Apply finished under a stopped ladder: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	// Reads on every shard keep serving during the stall.
	for i := 0; i < 100; i += 17 {
		if _, err := db.Get(shardKey(0, db, i)); err != nil {
			t.Fatalf("Get during stall: %v", err)
		}
	}

	// The operator grows the budget; the stalled batch commits whole.
	sm.SetBudget(1 << 30)
	select {
	case err := <-applied:
		if err != nil {
			t.Fatalf("Apply after budget raise: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cross-shard batch still stalled after budget raise")
	}
	for s := 0; s < 4; s++ {
		v, err := db.Get(shardKey(s, db, 9999))
		if err != nil || string(v) != "atomic" {
			t.Fatalf("shard %d after raise: %q, %v", s, v, err)
		}
	}
}

// TestShardedEnospcKeepsBatchesAtomic drives a real injected disk-full
// through the 2PC path: with the filesystem quota squeezed below usage
// a cross-shard Apply must fail WITHOUT leaving any prepared write
// visible on any shard, and after the quota releases (and every shard's
// wait-for-space recovery heals), the same batch applies cleanly.
func TestShardedEnospcKeepsBatchesAtomic(t *testing.T) {
	dev := storage.New(clock.Real{}, storage.Null())
	ffs, err := faultfs.New(vfs.NewMem(dev), 1)
	if err != nil {
		t.Fatalf("faultfs.New: %v", err)
	}
	db, err := Open(testOptions(ffs, 4, func(o *Options) {
		o.Engine.RecoveryBaseBackoff = time.Millisecond
		o.Engine.RecoveryMaxBackoff = 5 * time.Millisecond
		o.Engine.MaxRecoveryAttempts = 1 << 20 // no giveup: the test releases
	}))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()

	for s := 0; s < 4; s++ {
		for i := 0; i < 20; i++ {
			if err := db.Put(shardKey(s, db, i), shardKey(s, db, i)); err != nil {
				t.Fatalf("Put: %v", err)
			}
		}
	}

	ffs.SetQuota(ffs.DiskUsed()) // full: any WAL append fails

	b := new(batch.Batch)
	for s := 0; s < 4; s++ {
		b.Put(shardKey(s, db, 8888), []byte("squeezed"))
	}
	if err := db.Apply(b, true); err == nil {
		t.Fatal("cross-shard Apply on a full disk succeeded")
	}

	// Atomicity under ENOSPC: no shard may expose any key of the
	// failed batch, prepared or otherwise.
	for s := 0; s < 4; s++ {
		if _, err := db.Get(shardKey(s, db, 8888)); !errors.Is(err, ErrNotFound) {
			t.Fatalf("shard %d leaked a key from the aborted batch: %v", s, err)
		}
	}
	// Reads of pre-squeeze data serve throughout.
	for s := 0; s < 4; s++ {
		if _, err := db.Get(shardKey(s, db, 0)); err != nil {
			t.Fatalf("Get shard %d during squeeze: %v", s, err)
		}
	}

	ffs.SetQuota(-1)
	deadline := time.Now().Add(10 * time.Second)
	for s := 0; s < 4; s++ {
		for db.Shard(s).Health() != engine.Healthy {
			if time.Now().After(deadline) {
				t.Fatalf("shard %d did not heal after release: %v",
					s, db.Shard(s).BackgroundError())
			}
			time.Sleep(time.Millisecond)
		}
	}

	if err := db.Apply(b, true); err != nil {
		t.Fatalf("Apply after release: %v", err)
	}
	for s := 0; s < 4; s++ {
		v, err := db.Get(shardKey(s, db, 8888))
		if err != nil || string(v) != "squeezed" {
			t.Fatalf("shard %d after release: %q, %v", s, v, err)
		}
	}
	// Nothing previously acknowledged was lost.
	for s := 0; s < 4; s++ {
		for i := 0; i < 20; i++ {
			if _, err := db.Get(shardKey(s, db, i)); err != nil {
				t.Fatalf("Get shard %d key %d after recovery: %v", s, i, err)
			}
		}
	}
}
