package shardeddb

import (
	"fmt"
	"io"
	"strconv"

	"xpointdb/internal/engine"
)

// WritePrometheus writes the sharded store's metrics in the Prometheus
// text exposition format: shared-resource families first (block cache,
// background pool, write controller, cross-shard transactions), then
// per-shard families carrying a shard label. Each family's HELP/TYPE
// header is emitted exactly once with every shard's sample grouped
// under it, which is what the obs package's strict parser (and real
// Prometheus servers) require.
func (db *DB) WritePrometheus(w io.Writer) {
	pw := shardPromWriter{w: w}

	pw.gauge("xpointdb_sharded_shards", "Number of range shards in the store.",
		float64(len(db.shards)))

	health := db.Health()
	healthy := 0.0
	if health == engine.Healthy {
		healthy = 1
	}
	pw.gaugeL("xpointdb_sharded_health", "1 when every shard is healthy; state carries the worst shard's detail.",
		fmt.Sprintf(`state="%s"`, health), healthy)

	// Shared block cache.
	used, hits, misses := db.CacheStats()
	pw.gauge("xpointdb_sharded_block_cache_used_bytes", "Bytes resident in the shared block cache.",
		float64(used))
	pw.counter("xpointdb_sharded_block_cache_hits_total", "Shared block cache hits.", float64(hits))
	pw.counter("xpointdb_sharded_block_cache_misses_total", "Shared block cache misses.", float64(misses))

	// Shared background pool.
	busy, waiting, grants := db.pool.Stats()
	pw.gauge("xpointdb_sharded_bgpool_slots", "Background worker tokens shared by all shards.",
		float64(db.pool.Size()))
	pw.gauge("xpointdb_sharded_bgpool_busy", "Tokens currently held by flush/compaction jobs.",
		float64(busy))
	pw.gauge("xpointdb_sharded_bgpool_waiting", "Background jobs queued for a token.",
		float64(waiting))
	pw.counter("xpointdb_sharded_bgpool_grants_total", "Tokens granted since open.", float64(grants))

	// Shared write controller (one Algorithm 1 instance, global budget).
	delayTotal, delayedOps, adjustments := db.controller.Stats()
	pw.gauge("xpointdb_sharded_write_rate_bytes_per_second", "Current shared delayed-write rate.",
		db.controller.Rate())
	pw.counter("xpointdb_sharded_stall_delay_seconds_total", "Foreground seconds spent in shared-controller delays.",
		delayTotal.Seconds())
	pw.counter("xpointdb_sharded_delayed_ops_total", "Writes delayed by the shared controller.",
		float64(delayedOps))
	pw.counter("xpointdb_sharded_rate_adjustments_total", "Algorithm 1 rate steps on the shared controller.",
		float64(adjustments))

	// Cross-shard transactions.
	cross, aborts, rolledForward, abortedAtOpen := db.TxnStats()
	pw.counter("xpointdb_sharded_txn_committed_total", "Cross-shard atomic batches committed.",
		float64(cross))
	pw.counter("xpointdb_sharded_txn_aborted_total", "Cross-shard batches aborted before the commit point.",
		float64(aborts))
	pw.counter("xpointdb_sharded_txn_phase2_failures_total", "Committed batches whose phase 2 hit an error (resolved at reopen).",
		float64(db.txnP2Failures.Load()))
	pw.counter("xpointdb_sharded_txn_rolled_forward_total", "Committed batches completed from prepare records at recovery.",
		float64(rolledForward))
	pw.counter("xpointdb_sharded_txn_aborted_at_open_total", "Uncommitted prepare records discarded at recovery.",
		float64(abortedAtOpen))
	pw.counter("xpointdb_sharded_txn_log_rotations_total", "Coordinator transaction-log rotations.",
		float64(db.txnLogRotation.Load()))
	pw.gauge("xpointdb_sharded_txn_pending", "Committed batches whose phase 2 has not finished.",
		float64(db.pendingTxns()))

	pw.counter("xpointdb_sharded_events_dropped_total", "Events dropped by the bounded sink queue.",
		float64(db.eventsDropped.Load()))

	// Per-shard families: one header per family, one sample per shard.
	snaps := make([]engine.MetricsSnapshot, len(db.shards))
	healths := make([]engine.Health, len(db.shards))
	l0s := make([]int, len(db.shards))
	bytesTotal := make([]int64, len(db.shards))
	for i, s := range db.shards {
		snaps[i] = s.Metrics().Snapshot()
		healths[i] = s.Health()
		ls := s.LevelStats()
		l0s[i] = ls.Levels[0].Files
		for _, l := range ls.Levels {
			bytesTotal[i] += l.Bytes
		}
	}

	each := func(name, help, typ string, v func(i int) float64) {
		pw.header(name, help, typ)
		for i := range db.shards {
			pw.sampleL(name, shardLabel(i), v(i))
		}
	}
	each("xpointdb_shard_health", "1 when the shard is healthy.", "gauge", func(i int) float64 {
		if healths[i] == engine.Healthy {
			return 1
		}
		return 0
	})
	each("xpointdb_shard_ops_total", "Operations served by the shard (gets + writes).", "counter",
		func(i int) float64 { return float64(snaps[i].Gets + snaps[i].Writes) })
	each("xpointdb_shard_write_ops_total", "Write (Apply) calls committed by the shard.", "counter",
		func(i int) float64 { return float64(snaps[i].Writes) })
	each("xpointdb_shard_get_p99_seconds", "Shard Get latency p99.", "gauge",
		func(i int) float64 { return snaps[i].GetP99.Seconds() })
	each("xpointdb_shard_write_p99_seconds", "Shard Apply latency p99.", "gauge",
		func(i int) float64 { return snaps[i].WriteP99.Seconds() })
	each("xpointdb_shard_flushes_total", "Completed memtable flushes.", "counter",
		func(i int) float64 { return float64(snaps[i].Flushes) })
	each("xpointdb_shard_flush_bytes_total", "Bytes written to Level 0 by flushes.", "counter",
		func(i int) float64 { return float64(snaps[i].FlushBytes) })
	each("xpointdb_shard_compactions_total", "Completed compactions.", "counter",
		func(i int) float64 { return float64(snaps[i].Compactions) })
	each("xpointdb_shard_compaction_written_bytes_total", "Compaction output bytes written.", "counter",
		func(i int) float64 { return float64(snaps[i].CompactionBytesWritten) })
	each("xpointdb_shard_trivial_moves_total", "Input files moved down a level without data I/O.", "counter",
		func(i int) float64 { return float64(snaps[i].TrivialMoves) })
	each("xpointdb_shard_subcompactions_total", "Sub-compaction ranges executed by the shard.", "counter",
		func(i int) float64 { return float64(snaps[i].Subcompactions) })
	each("xpointdb_shard_bgpool_waiting", "Background jobs from the shard waiting for a pool token.", "gauge",
		func(i int) float64 { w, _ := db.pool.TagStats(i); return float64(w) })
	each("xpointdb_shard_bgpool_grants_total", "Pool tokens granted to the shard since open.", "counter",
		func(i int) float64 { _, g := db.pool.TagStats(i); return float64(g) })
	each("xpointdb_shard_l0_files", "Current Level-0 file count (stall pressure input).", "gauge",
		func(i int) float64 { return float64(l0s[i]) })
	each("xpointdb_shard_bytes", "Total SST bytes across the shard's levels.", "gauge",
		func(i int) float64 { return float64(bytesTotal[i]) })
	each("xpointdb_shard_stall_delay_seconds_total", "Foreground seconds the shard spent in controller delays.", "counter",
		func(i int) float64 { return snaps[i].StallDelayTotal.Seconds() })
	each("xpointdb_shard_stall_stop_seconds_total", "Foreground seconds the shard spent blocked on stops.", "counter",
		func(i int) float64 { return snaps[i].StallStopTotal.Seconds() })
	each("xpointdb_shard_stall_stops_total", "Stop-stall episodes on the shard.", "counter",
		func(i int) float64 { return float64(snaps[i].StallStops) })
	each("xpointdb_shard_wal_syncs_total", "WAL fsyncs on the shard.", "counter",
		func(i int) float64 { return float64(snaps[i].WALSyncs) })
	each("xpointdb_shard_wal_sync_bytes_total", "Bytes made durable by the shard's WAL fsyncs.", "counter",
		func(i int) float64 { return float64(snaps[i].WALSyncBytes) })
	each("xpointdb_shard_soft_errors_total", "Soft background-error episodes on the shard.", "counter",
		func(i int) float64 { return float64(snaps[i].SoftErrors) })
	each("xpointdb_shard_hard_errors_total", "Hard background-error latches on the shard.", "counter",
		func(i int) float64 { return float64(snaps[i].HardErrors) })
}

func shardLabel(i int) string { return fmt.Sprintf(`shard="%d"`, i) }

// shardPromWriter mirrors the engine's promWriter (which is
// unexported): HELP/TYPE headers paired with samples, floats in
// shortest-round-trip form.
type shardPromWriter struct {
	w io.Writer
}

func (p *shardPromWriter) header(name, help, typ string) {
	fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p *shardPromWriter) counter(name, help string, v float64) {
	p.header(name, help, "counter")
	fmt.Fprintf(p.w, "%s %s\n", name, shardPromFloat(v))
}

func (p *shardPromWriter) gauge(name, help string, v float64) {
	p.header(name, help, "gauge")
	fmt.Fprintf(p.w, "%s %s\n", name, shardPromFloat(v))
}

func (p *shardPromWriter) gaugeL(name, help, labels string, v float64) {
	p.header(name, help, "gauge")
	p.sampleL(name, labels, v)
}

func (p *shardPromWriter) sampleL(name, labels string, v float64) {
	fmt.Fprintf(p.w, "%s{%s} %s\n", name, labels, shardPromFloat(v))
}

func shardPromFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
