package shardeddb

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"sync"

	"xpointdb/internal/batch"
	"xpointdb/internal/clock"
	"xpointdb/internal/engine"
	"xpointdb/internal/events"
	"xpointdb/internal/obs"
	"xpointdb/internal/storage"
	"xpointdb/internal/throttle"
	"xpointdb/internal/vfs"
)

// newTestStore returns a sharded store on a zero-latency in-memory FS
// with a small per-shard geometry so background work actually happens.
func newTestStore(t *testing.T, shards int, tweak func(*Options)) (*DB, *vfs.MemFS) {
	t.Helper()
	dev := storage.New(clock.Real{}, storage.Null())
	fs := vfs.NewMem(dev)
	db, err := Open(testOptions(fs, shards, tweak))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return db, fs
}

func testOptions(fs vfs.FS, shards int, tweak func(*Options)) Options {
	eo := engine.DefaultOptions(fs)
	eo.MemtableSize = 32 << 10
	eo.TargetFileSize = 32 << 10
	eo.BaseLevelBytes = 128 << 10
	eo.ThrottleMode = throttle.ModeNone
	eo.SyncWAL = true
	opts := Options{Shards: shards, Engine: eo}
	if tweak != nil {
		tweak(&opts)
	}
	return opts
}

func reopenStore(t *testing.T, fs vfs.FS, shards int, tweak func(*Options)) *DB {
	t.Helper()
	db, err := Open(testOptions(fs, shards, tweak))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	return db
}

func shardKey(shard int, db *DB, i int) []byte {
	start, _ := db.ShardRange(shard)
	if len(start) == 0 {
		start = []byte{1}
	}
	return append(append([]byte{}, start...), []byte(fmt.Sprintf("key-%06d", i))...)
}

func TestShardedPutGetSmoke(t *testing.T) {
	db, _ := newTestStore(t, 4, nil)
	defer db.Close()

	if db.NumShards() != 4 {
		t.Fatalf("NumShards = %d", db.NumShards())
	}
	// One key per shard, routed by range.
	for s := 0; s < 4; s++ {
		k := shardKey(s, db, s)
		if got := db.ShardForKey(k); got != s {
			t.Fatalf("ShardForKey(%q) = %d, want %d", k, got, s)
		}
		if err := db.Put(k, []byte(fmt.Sprintf("v%d", s))); err != nil {
			t.Fatalf("Put shard %d: %v", s, err)
		}
	}
	for s := 0; s < 4; s++ {
		v, err := db.Get(shardKey(s, db, s))
		if err != nil {
			t.Fatalf("Get shard %d: %v", s, err)
		}
		if string(v) != fmt.Sprintf("v%d", s) {
			t.Fatalf("Get shard %d = %q", s, v)
		}
	}
	if _, err := db.Get([]byte("nope")); err != ErrNotFound {
		t.Fatalf("missing Get = %v, want ErrNotFound", err)
	}
	if err := db.Put([]byte{0, 'x'}, []byte("v")); err != ErrReservedKey {
		t.Fatalf("reserved Put = %v, want ErrReservedKey", err)
	}
}

func TestShardedRoutingBoundaries(t *testing.T) {
	db, _ := newTestStore(t, 4, nil)
	defer db.Close()
	// A key exactly at a boundary belongs to the right-hand shard.
	for i, b := range db.boundaries {
		if got := db.ShardForKey(b); got != i+1 {
			t.Fatalf("ShardForKey(boundary %d) = %d, want %d", i, got, i+1)
		}
		below := append(append([]byte{}, b...), 0) // just above boundary
		if got := db.ShardForKey(below); got != i+1 {
			t.Fatalf("ShardForKey(boundary+0) = %d, want %d", got, i+1)
		}
	}
}

func TestShardedMultiGet(t *testing.T) {
	db, _ := newTestStore(t, 4, nil)
	defer db.Close()
	var keys [][]byte
	for s := 0; s < 4; s++ {
		for i := 0; i < 8; i++ {
			k := shardKey(s, db, i)
			keys = append(keys, k)
			if i%2 == 0 {
				if err := db.Put(k, k); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	vals, errs := db.MultiGet(keys...)
	for i, k := range keys {
		if i%2 == 0 {
			if errs[i] != nil || !bytes.Equal(vals[i], k) {
				t.Fatalf("MultiGet[%d] = %q, %v", i, vals[i], errs[i])
			}
		} else if errs[i] != ErrNotFound {
			t.Fatalf("MultiGet[%d] err = %v, want ErrNotFound", i, errs[i])
		}
	}
}

func TestCrossShardBatchAtomicity(t *testing.T) {
	db, fs := newTestStore(t, 4, nil)

	// Batch touching all four shards.
	b := new(batch.Batch)
	for s := 0; s < 4; s++ {
		b.Put(shardKey(s, db, 0), []byte("atomic"))
	}
	if err := db.Apply(b, true); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	cross, aborts, _, _ := db.TxnStats()
	if cross != 1 || aborts != 0 {
		t.Fatalf("TxnStats = %d committed, %d aborted", cross, aborts)
	}
	for s := 0; s < 4; s++ {
		if v, err := db.Get(shardKey(s, db, 0)); err != nil || string(v) != "atomic" {
			t.Fatalf("shard %d: %q, %v", s, v, err)
		}
	}

	// Prepare records must have been cleaned up: no reserved keys
	// remain visible on any shard's raw iterator.
	for s := 0; s < 4; s++ {
		it, err := db.Shard(s).NewIter()
		if err != nil {
			t.Fatal(err)
		}
		for it.SeekToFirst(); it.Valid(); it.Next() {
			if isInternalKey(it.Key()) && !bytes.Equal(it.Key(), syncMarkerKey) {
				t.Fatalf("shard %d: leftover internal key %q", s, it.Key())
			}
		}
		it.Close()
	}

	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen: everything still there, no recovery work needed.
	db2 := reopenStore(t, fs, 4, nil)
	defer db2.Close()
	for s := 0; s < 4; s++ {
		if v, err := db2.Get(shardKey(s, db2, 0)); err != nil || string(v) != "atomic" {
			t.Fatalf("reopen shard %d: %q, %v", s, v, err)
		}
	}
	_, _, rolledForward, abortedAtOpen := db2.TxnStats()
	if rolledForward != 0 || abortedAtOpen != 0 {
		t.Fatalf("clean reopen did recovery work: rf=%d ab=%d", rolledForward, abortedAtOpen)
	}
}

func TestShardedIterAcrossShards(t *testing.T) {
	db, _ := newTestStore(t, 4, nil)
	defer db.Close()

	var want []string
	for s := 0; s < 4; s++ {
		for i := 0; i < 20; i++ {
			k := shardKey(s, db, i)
			want = append(want, string(k))
			if err := db.Put(k, []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
	}
	// A cross-shard batch, so prepare/sync bookkeeping keys exist and
	// must be filtered out.
	b := new(batch.Batch)
	b.Put(shardKey(0, db, 99), []byte("v"))
	b.Put(shardKey(3, db, 99), []byte("v"))
	if err := db.Apply(b, true); err != nil {
		t.Fatal(err)
	}
	want = append(want, string(shardKey(0, db, 99)), string(shardKey(3, db, 99)))
	sortStrings(want)

	it, err := db.NewIter()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()

	var got []string
	for it.SeekToFirst(); it.Valid(); it.Next() {
		got = append(got, string(it.Key()))
	}
	if err := it.Error(); err != nil {
		t.Fatalf("iter error: %v", err)
	}
	if !equalStrings(got, want) {
		t.Fatalf("forward scan: got %d keys, want %d\ngot[0..5]=%v\nwant[0..5]=%v",
			len(got), len(want), head(got, 5), head(want, 5))
	}

	// Reverse.
	var rev []string
	for it.SeekToLast(); it.Valid(); it.Prev() {
		rev = append(rev, string(it.Key()))
	}
	reverseStrings(rev)
	if !equalStrings(rev, want) {
		t.Fatalf("reverse scan mismatch: got %d keys, want %d", len(rev), len(want))
	}

	// Seeks that land mid-shard and cross boundaries.
	it.SeekGE(shardKey(1, db, 19))
	if !it.Valid() || string(it.Key()) != string(shardKey(1, db, 19)) {
		t.Fatalf("SeekGE mid-shard: %q valid=%v", it.Key(), it.Valid())
	}
	it.Next() // into shard 2's first key
	if !it.Valid() || db.ShardForKey(it.Key()) != 2 {
		t.Fatalf("Next across boundary: %q", it.Key())
	}
	it.SeekLT(shardKey(2, db, 0))
	if !it.Valid() || db.ShardForKey(it.Key()) != 1 {
		t.Fatalf("SeekLT across boundary: %q", it.Key())
	}
}

func TestShardedSnapshot(t *testing.T) {
	db, _ := newTestStore(t, 4, nil)
	defer db.Close()

	for s := 0; s < 4; s++ {
		if err := db.Put(shardKey(s, db, 0), []byte("old")); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := db.NewSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	for s := 0; s < 4; s++ {
		if err := db.Put(shardKey(s, db, 0), []byte("new")); err != nil {
			t.Fatal(err)
		}
	}
	for s := 0; s < 4; s++ {
		v, err := snap.Get(shardKey(s, db, 0))
		if err != nil || string(v) != "old" {
			t.Fatalf("snapshot shard %d = %q, %v", s, v, err)
		}
		v, err = db.Get(shardKey(s, db, 0))
		if err != nil || string(v) != "new" {
			t.Fatalf("live shard %d = %q, %v", s, v, err)
		}
	}
	it, err := snap.NewIter()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	n := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		if string(it.Value()) != "old" {
			t.Fatalf("snapshot iter saw %q", it.Value())
		}
		n++
	}
	if n != 4 {
		t.Fatalf("snapshot iter saw %d keys, want 4", n)
	}
}

func TestSharedCacheAndPoolAreShared(t *testing.T) {
	db, _ := newTestStore(t, 4, func(o *Options) {
		o.Engine.BlockCacheSize = 1 << 20
		o.PoolSlots = 2
	})
	defer db.Close()

	// Write enough into every shard to force flushes through the
	// shared pool, then read back through the shared cache.
	val := bytes.Repeat([]byte("x"), 512)
	for s := 0; s < 4; s++ {
		for i := 0; i < 200; i++ {
			if err := db.Put(shardKey(s, db, i), val); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 4; s++ {
		for i := 0; i < 200; i++ {
			if _, err := db.Get(shardKey(s, db, i)); err != nil {
				t.Fatalf("shard %d key %d: %v", s, i, err)
			}
		}
	}
	used, hits, misses := db.CacheStats()
	if used == 0 || hits+misses == 0 {
		t.Fatalf("shared cache unused: used=%d hits=%d misses=%d", used, hits, misses)
	}
	if _, _, grants := db.pool.Stats(); grants == 0 {
		t.Fatal("shared pool never granted a token")
	}
	if db.pool.Size() != 2 {
		t.Fatalf("pool size = %d, want 2", db.pool.Size())
	}
}

func TestShardsOneBehavesLikeEngine(t *testing.T) {
	db, fs := newTestStore(t, 1, nil)
	for i := 0; i < 100; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Single-shard batches bypass 2PC entirely.
	b := new(batch.Batch)
	b.Put([]byte("a"), []byte("1"))
	b.Put([]byte("z"), []byte("2"))
	if err := db.Apply(b, true); err != nil {
		t.Fatal(err)
	}
	if cross, _, _, _ := db.TxnStats(); cross != 0 {
		t.Fatalf("single-shard store ran %d cross-shard txns", cross)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := reopenStore(t, fs, 1, nil)
	defer db2.Close()
	if v, err := db2.Get([]byte("z")); err != nil || string(v) != "2" {
		t.Fatalf("reopen: %q, %v", v, err)
	}
}

func TestShardedPrometheusParses(t *testing.T) {
	db, _ := newTestStore(t, 3, nil)
	defer db.Close()
	for s := 0; s < 3; s++ {
		if err := db.Put(shardKey(s, db, 0), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	b := new(batch.Batch)
	b.Put(shardKey(0, db, 1), []byte("v"))
	b.Put(shardKey(2, db, 1), []byte("v"))
	if err := db.Apply(b, true); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	db.WritePrometheus(&buf)
	fams, err := obs.ParsePromText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ParsePromText: %v\n%s", err, buf.String())
	}
	byName := map[string]*obs.PromFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	for _, name := range []string{
		"xpointdb_sharded_shards",
		"xpointdb_sharded_block_cache_used_bytes",
		"xpointdb_sharded_bgpool_slots",
		"xpointdb_sharded_txn_committed_total",
		"xpointdb_shard_ops_total",
		"xpointdb_shard_l0_files",
		"xpointdb_shard_wal_syncs_total",
	} {
		if byName[name] == nil {
			t.Fatalf("family %s missing", name)
		}
	}
	// Per-shard families carry one sample per shard with distinct labels.
	ops := byName["xpointdb_shard_ops_total"]
	if len(ops.Samples) != 3 {
		t.Fatalf("xpointdb_shard_ops_total has %d samples, want 3", len(ops.Samples))
	}
	shardsSeen := map[string]bool{}
	for _, s := range ops.Samples {
		shardsSeen[s.Labels["shard"]] = true
	}
	if len(shardsSeen) != 3 {
		t.Fatalf("shard labels = %v", shardsSeen)
	}
	if v := byName["xpointdb_sharded_txn_committed_total"].Samples[0].Value; v != 1 {
		t.Fatalf("txn_committed = %v, want 1", v)
	}
	if !strings.Contains(db.StatsReport(), "cross-shard txns") {
		t.Fatal("StatsReport missing shared-resource summary")
	}
}

func TestShardedEventsCarryShardTag(t *testing.T) {
	sink := eventsCollector{tags: map[int]int{}}
	db, _ := newTestStore(t, 2, func(o *Options) {
		o.Engine.EventListener = &sink
		o.Engine.EventSinkQueue = -1 // synchronous
	})
	defer db.Close()

	val := bytes.Repeat([]byte("x"), 512)
	for s := 0; s < 2; s++ {
		for i := 0; i < 100; i++ {
			if err := db.Put(shardKey(s, db, i), val); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if sink.tag(1) == 0 || sink.tag(2) == 0 {
		t.Fatalf("events not tagged per shard: %v", sink.tags)
	}
	if sink.tag(0) != 0 {
		t.Fatalf("untagged events leaked through: %v", sink.tags)
	}
}

type eventsCollector struct {
	mu   sync.Mutex
	tags map[int]int
}

func (c *eventsCollector) Emit(e events.Event) {
	c.mu.Lock()
	c.tags[e.Shard]++
	c.mu.Unlock()
}

func (c *eventsCollector) tag(i int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tags[i]
}

// Small helpers (avoid importing sort/slices piecemeal in each test).
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func reverseStrings(s []string) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func head(s []string, n int) []string {
	if len(s) < n {
		return s
	}
	return s[:n]
}
