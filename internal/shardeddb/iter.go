package shardeddb

import (
	"errors"

	"xpointdb/internal/engine"
)

// Iter iterates the whole keyspace in key order. Because shards
// partition the keyspace by range, global order is simply the
// concatenation of per-shard orders — no heap merge is needed; the
// iterator walks one shard at a time and hops to the neighbour when
// the current one is exhausted. Reserved (0x00-prefixed) bookkeeping
// keys — 2PC prepare records, sync markers — are skipped so callers
// only ever see user data.
//
// Each per-shard iterator pins that shard's SuperVersion eagerly at
// NewIter time, so the view is stable per shard; like engine
// iterators, the vector as a whole is not a single atomic snapshot
// across concurrently committing cross-shard batches (use NewSnapshot
// plus application-level fencing when that matters).
type Iter struct {
	db    *DB
	iters []*engine.Iter
	cur   int
	valid bool
	err   error
}

// NewIter returns an iterator over the live store.
func (db *DB) NewIter() (*Iter, error) {
	if db.closed.Load() {
		return nil, ErrClosed
	}
	return db.newIter(func(s *engine.DB) (*engine.Iter, error) { return s.NewIter() })
}

func (db *DB) newIter(open func(*engine.DB) (*engine.Iter, error)) (*Iter, error) {
	it := &Iter{db: db, iters: make([]*engine.Iter, len(db.shards))}
	for i, s := range db.shards {
		si, err := open(s)
		if err != nil {
			for _, prev := range it.iters[:i] {
				prev.Close()
			}
			return nil, err
		}
		it.iters[i] = si
	}
	return it, nil
}

// Valid reports whether the iterator is positioned on a user entry.
func (it *Iter) Valid() bool { return it.valid && it.err == nil }

// Key returns the current key. Only valid while Valid().
func (it *Iter) Key() []byte { return it.iters[it.cur].Key() }

// Value returns the current value. Only valid while Valid().
func (it *Iter) Value() []byte { return it.iters[it.cur].Value() }

// Error returns the first error hit by any per-shard iterator.
func (it *Iter) Error() error { return it.err }

// SeekToFirst positions at the smallest user key in the store.
func (it *Iter) SeekToFirst() {
	if it.err != nil {
		return
	}
	it.cur = 0
	it.iters[0].SeekToFirst()
	it.skipFwd()
}

// SeekToLast positions at the largest user key in the store.
func (it *Iter) SeekToLast() {
	if it.err != nil {
		return
	}
	it.cur = len(it.iters) - 1
	it.iters[it.cur].SeekToLast()
	it.skipBwd()
}

// SeekGE positions at the smallest key ≥ key.
func (it *Iter) SeekGE(key []byte) {
	if it.err != nil {
		return
	}
	it.cur = it.db.ShardForKey(key)
	it.iters[it.cur].SeekGE(key)
	it.skipFwd()
}

// SeekLT positions at the largest key < key.
func (it *Iter) SeekLT(key []byte) {
	if it.err != nil {
		return
	}
	it.cur = it.db.ShardForKey(key)
	it.iters[it.cur].SeekLT(key)
	it.skipBwd()
}

// Next advances to the next user key, crossing shard boundaries.
func (it *Iter) Next() {
	if !it.Valid() {
		return
	}
	it.iters[it.cur].Next()
	it.skipFwd()
}

// Prev steps back to the previous user key, crossing shard boundaries.
func (it *Iter) Prev() {
	if !it.Valid() {
		return
	}
	it.iters[it.cur].Prev()
	it.skipBwd()
}

// skipFwd establishes the forward invariant: position on the next
// visible user key at or after the current point, hopping to later
// shards (from their start) as each one runs out.
func (it *Iter) skipFwd() {
	for {
		si := it.iters[it.cur]
		for si.Valid() && isInternalKey(si.Key()) {
			si.Next()
		}
		if si.Valid() {
			it.valid = true
			return
		}
		if err := si.Error(); err != nil {
			it.fail(err)
			return
		}
		if it.cur == len(it.iters)-1 {
			it.valid = false
			return
		}
		it.cur++
		it.iters[it.cur].SeekToFirst()
	}
}

// skipBwd is skipFwd's mirror for reverse iteration, hopping to
// earlier shards (from their end).
func (it *Iter) skipBwd() {
	for {
		si := it.iters[it.cur]
		for si.Valid() && isInternalKey(si.Key()) {
			si.Prev()
		}
		if si.Valid() {
			it.valid = true
			return
		}
		if err := si.Error(); err != nil {
			it.fail(err)
			return
		}
		if it.cur == 0 {
			it.valid = false
			return
		}
		it.cur--
		it.iters[it.cur].SeekToLast()
	}
}

func (it *Iter) fail(err error) {
	it.valid = false
	if it.err == nil {
		it.err = err
	}
}

// Close releases every per-shard iterator (and its pinned version).
func (it *Iter) Close() error {
	it.valid = false
	var errs []error
	for _, si := range it.iters {
		if si != nil {
			if err := si.Close(); err != nil {
				errs = append(errs, err)
			}
		}
	}
	it.iters = nil
	if it.err != nil {
		errs = append([]error{it.err}, errs...)
	}
	return errors.Join(errs...)
}

// Snapshot pins a point-in-time view of every shard. The per-shard
// views are individually consistent; the vector is captured in shard
// order without a global write fence, so a cross-shard batch committing
// concurrently with NewSnapshot may appear in some participants only.
// Crash recovery (not snapshots) is where the all-or-nothing contract
// is enforced.
type Snapshot struct {
	db    *DB
	snaps []*engine.Snapshot
}

// NewSnapshot captures the current visible state of all shards.
func (db *DB) NewSnapshot() (*Snapshot, error) {
	if db.closed.Load() {
		return nil, ErrClosed
	}
	s := &Snapshot{db: db, snaps: make([]*engine.Snapshot, len(db.shards))}
	for i, sh := range db.shards {
		s.snaps[i] = sh.NewSnapshot()
	}
	return s, nil
}

// Get reads key as of the snapshot.
func (s *Snapshot) Get(key []byte) ([]byte, error) {
	if err := checkKey(key); err != nil {
		return nil, err
	}
	return s.snaps[s.db.ShardForKey(key)].Get(key)
}

// NewIter returns an iterator over the snapshot's view.
func (s *Snapshot) NewIter() (*Iter, error) {
	it := &Iter{db: s.db, iters: make([]*engine.Iter, len(s.snaps))}
	for i, snap := range s.snaps {
		si, err := snap.NewIter()
		if err != nil {
			for _, prev := range it.iters[:i] {
				prev.Close()
			}
			return nil, err
		}
		it.iters[i] = si
	}
	return it, nil
}

// Release unpins all per-shard snapshots. Safe to call more than once.
func (s *Snapshot) Release() {
	for _, snap := range s.snaps {
		snap.Release()
	}
}
