package shardeddb_test

import (
	"flag"
	"testing"

	"xpointdb/internal/torture"
)

var (
	tortureIters = flag.Int("torture.iters", 12,
		"sharded crash-consistency torture iterations (make tier3 runs 50+)")
	tortureSeed = flag.Int64("torture.seed", 1,
		"base seed; iteration i runs with seed+i")
	tortureOps = flag.Int("torture.ops", 0,
		"ops per iteration (0 = harness default)")
	tortureShards = flag.Int("torture.shards", 0,
		"shard count per iteration (0 = rotate through 2, 3, 4)")
)

// TestTortureSharded runs the seeded crash-consistency torture harness
// against the range-sharded store: random workload with cross-shard
// atomic batches, fault injection across every shard directory and the
// coordinator log, crash at a random filesystem-op boundary, reopen,
// and verification of the per-shard durability contract plus the
// cross-shard all-or-nothing (2PC) contract — no crash point may ever
// expose a torn batch, and every acknowledged cross-shard batch must
// survive in full. On failure, reproduce with
// `go run ./cmd/torture -seed N -shards S`.
func TestTortureSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("torture harness skipped in -short mode")
	}
	for i := 0; i < *tortureIters; i++ {
		seed := *tortureSeed + int64(i)
		shards := *tortureShards
		if shards == 0 {
			shards = 2 + i%3
		}
		cfg := torture.Config{Seed: seed, Ops: *tortureOps, Shards: shards}
		if testing.Verbose() {
			cfg.Logf = t.Logf
		}
		if err := torture.Run(cfg); err != nil {
			t.Fatalf("%v\n\nreproduce with: go run ./cmd/torture -seed %d -shards %d",
				err, seed, shards)
		}
	}
}
