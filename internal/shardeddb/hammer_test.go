package shardeddb

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"

	"xpointdb/internal/batch"
	"xpointdb/internal/obs"
)

// TestShardHammerWithLiveScraper drives every concurrent surface of
// the sharded store at once — per-shard writers, cross-shard 2PC
// batches, point readers, full cross-shard iterators, snapshots,
// manual flushes — while a scraper loops over the live HTTP /metrics
// endpoint, strictly parsing every response. Run under -race (make
// tier2) this is the data-race probe for the shared cache, shared
// pool, shared controller, event tagging, and the coordinator log.
func TestShardHammerWithLiveScraper(t *testing.T) {
	const shards = 4
	db, _ := newTestStore(t, shards, func(o *Options) {
		o.Engine.ObsAddr = "127.0.0.1:0"
		o.Engine.BlockCacheSize = 1 << 20
		o.PoolSlots = 2 // contended on purpose
	})
	defer db.Close()

	addr := db.ObsAddr()
	if addr == "" {
		t.Fatal("ObsAddr empty with ObsAddr option set")
	}
	base := "http://" + addr

	ops := 400
	if testing.Short() {
		ops = 80
	}

	var (
		wg        sync.WaitGroup // every goroutine
		writersWg sync.WaitGroup // bounded producers only
		done      atomic.Bool
		writeErr  atomic.Value
	)
	fail := func(err error) {
		if err != nil {
			writeErr.CompareAndSwap(nil, err)
		}
	}

	// Per-shard writers.
	for s := 0; s < shards; s++ {
		wg.Add(1)
		writersWg.Add(1)
		go func(s int) {
			defer wg.Done()
			defer writersWg.Done()
			rng := rand.New(rand.NewSource(int64(s)))
			for i := 0; i < ops; i++ {
				k := shardKey(s, db, rng.Intn(200))
				if err := db.Put(k, bytes.Repeat([]byte{byte(i)}, 256)); err != nil {
					fail(fmt.Errorf("writer %d: %w", s, err))
					return
				}
			}
		}(s)
	}

	// Cross-shard 2PC writers.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		writersWg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer writersWg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < ops/4; i++ {
				var b batch.Batch
				for j := 0; j < 3; j++ {
					s := rng.Intn(shards)
					b.Put(shardKey(s, db, 500+rng.Intn(50)), []byte(fmt.Sprintf("x-%d-%d", w, i)))
				}
				if err := db.Apply(&b, i%2 == 0); err != nil {
					fail(fmt.Errorf("cross writer %d: %w", w, err))
					return
				}
			}
		}(w)
	}

	// Point readers (misses are fine; errors are not).
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + r)))
			for !done.Load() {
				s := rng.Intn(shards)
				_, err := db.Get(shardKey(s, db, rng.Intn(600)))
				if err != nil && err != ErrNotFound {
					fail(fmt.Errorf("reader %d: %w", r, err))
					return
				}
			}
		}(r)
	}

	// Cross-shard iterator + snapshot churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !done.Load() {
			it, err := db.NewIter()
			if err != nil {
				fail(fmt.Errorf("iter open: %w", err))
				return
			}
			n := 0
			for it.SeekToFirst(); it.Valid() && n < 500; it.Next() {
				if isInternalKey(it.Key()) {
					fail(fmt.Errorf("iterator leaked internal key %q", it.Key()))
				}
				n++
			}
			fail(it.Error())
			it.Close()

			snap, err := db.NewSnapshot()
			if err != nil {
				fail(fmt.Errorf("snapshot: %w", err))
				return
			}
			_, gerr := snap.Get(shardKey(0, db, 0))
			if gerr != nil && gerr != ErrNotFound {
				fail(fmt.Errorf("snapshot get: %w", gerr))
			}
			snap.Release()
		}
	}()

	// Flusher keeps background machinery churning through the shared pool.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10 && !done.Load(); i++ {
			if err := db.Flush(); err != nil {
				fail(fmt.Errorf("flush: %w", err))
				return
			}
		}
	}()

	// Live /metrics scraper: every response must parse strictly and
	// carry the per-shard families.
	scrapes := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !done.Load() {
			resp, err := http.Get(base + "/metrics")
			if err != nil {
				fail(fmt.Errorf("GET /metrics: %w", err))
				return
			}
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr != nil {
				fail(fmt.Errorf("read /metrics: %w", rerr))
				return
			}
			fams, perr := obs.ParsePromText(bytes.NewReader(body))
			if perr != nil {
				fail(fmt.Errorf("scrape %d failed strict parse: %w", scrapes, perr))
				return
			}
			found := false
			for _, f := range fams {
				if f.Name == "xpointdb_shard_ops_total" {
					found = len(f.Samples) == shards
				}
			}
			if !found {
				fail(fmt.Errorf("scrape %d missing per-shard family", scrapes))
				return
			}
			scrapes++
		}
	}()

	// Once the bounded writers finish, stop the open-ended loops.
	writersWg.Wait()
	done.Store(true)
	wg.Wait()

	if err, _ := writeErr.Load().(error); err != nil {
		t.Fatal(err)
	}
	if scrapes == 0 {
		t.Fatal("scraper never completed a scrape")
	}
	// The store must still be coherent after the storm.
	if err := db.BackgroundError(); err != nil {
		t.Fatalf("background error after hammer: %v", err)
	}
	var buf bytes.Buffer
	db.WritePrometheus(&buf)
	if _, err := obs.ParsePromText(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("final exposition unparseable: %v", err)
	}
	t.Logf("hammer done: %d scrapes", scrapes)
}
