package shardeddb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"xpointdb/internal/batch"
	"xpointdb/internal/engine"
	"xpointdb/internal/vfs"
	"xpointdb/internal/wal"
)

// Two-phase commit for cross-shard atomic batches, with presumed
// abort. An LSM shard cannot roll an applied batch back, so the data
// is NOT applied until the outcome is decided:
//
//	Phase 1 (prepare):  every participant durably logs a prepare
//	                    record — a reserved-keyspace Put whose value
//	                    is the shard's sub-batch payload — with
//	                    sync=true, in parallel.
//	Commit point:       one commit record (the batch ID) appended and
//	                    synced to the coordinator log in the meta
//	                    namespace. Before this record is durable the
//	                    transaction is presumed aborted.
//	Phase 2 (apply):    each participant applies its real sub-batch
//	                    plus a delete of its prepare record, as one
//	                    engine batch, with the caller's sync flag.
//
// Recovery at open reads the committed-ID set from the coordinator
// log (a torn tail reads as "uncommitted", which is safe: the caller
// was only acknowledged after the commit record synced), scans every
// shard for surviving prepare records, rolls the committed ones
// forward and aborts the rest. Roll-forward cannot clobber newer
// durable data: the prepare's sync made that shard's whole WAL prefix
// durable, so a surviving prepare means nothing later in that shard
// survived either.
//
// The coordinator log never shrinks in place; it rotates through a
// CURRENT-style pointer file (txnCurName) so a torn new log can never
// orphan carried-forward IDs — the old log stays authoritative until
// the pointer renames over. Before a rotation drops confirmed IDs it
// forces every shard's WAL down (a reserved-key Put with sync=true),
// making the phase-2 prepare deletions durable; otherwise a dropped
// ID's prepare could resurface after a crash and be wrongly aborted.

const (
	// txnCurName is the pointer file naming the live coordinator log.
	txnCurName = "TXNCUR"
	// txnRecEpoch and txnRecCommit are the log record kinds.
	txnRecEpoch  = 1
	txnRecCommit = 2
	// txnRotateEvery bounds commits per log before rotation.
	txnRotateEvery = 4096
)

// prepPrefix is the reserved key prefix for prepare records; the full
// key is prepPrefix + 8-byte big-endian batch ID. 0x00-leading keys
// are rejected from the public API, so this keyspace is private.
var prepPrefix = []byte{0, 't', 'x', 'n', 0}

// syncMarkerKey is the reserved key whose synced Put forces a shard's
// WAL down during coordinator-log rotation.
var syncMarkerKey = []byte{0, 's', 'y', 'n', 'c'}

func prepKeyFor(id uint64) []byte {
	k := make([]byte, len(prepPrefix)+8)
	copy(k, prepPrefix)
	binary.BigEndian.PutUint64(k[len(prepPrefix):], id)
	return k
}

func prepKeyID(key []byte) (uint64, bool) {
	if len(key) != len(prepPrefix)+8 || string(key[:len(prepPrefix)]) != string(prepPrefix) {
		return 0, false
	}
	return binary.BigEndian.Uint64(key[len(prepPrefix):]), true
}

// isInternalKey reports whether key lives in the reserved keyspace.
func isInternalKey(key []byte) bool { return len(key) > 0 && key[0] == 0 }

// applyCross runs the two-phase protocol for a batch spanning parts.
func (db *DB) applyCross(parts map[int]*batch.Batch, syncWAL bool) error {
	db.txnMu.Lock()
	db.txnCounter++
	id := uint64(db.txnEpoch)<<32 | uint64(db.txnCounter)
	db.txnMu.Unlock()
	prepKey := prepKeyFor(id)

	// Phase 1: durable prepare records in every participant, in
	// parallel. The record's value is the sub-batch payload, so the
	// shard itself carries everything roll-forward needs.
	shardIDs := make([]int, 0, len(parts))
	for s := range parts {
		shardIDs = append(shardIDs, s)
	}
	prepErrs := make([]error, len(shardIDs))
	var wg sync.WaitGroup
	for i, s := range shardIDs {
		wg.Add(1)
		go func(i, s int) {
			defer wg.Done()
			var pb batch.Batch
			pb.Put(prepKey, parts[s].Repr())
			prepErrs[i] = db.shards[s].Apply(&pb, true)
		}(i, s)
	}
	wg.Wait()
	for i, e := range prepErrs {
		if e != nil {
			// Presumed abort: best-effort removal of the prepares that
			// did land; recovery aborts any that survive a crash.
			db.abortPrepares(shardIDs, prepErrs, prepKey)
			db.txnAborts.Add(1)
			return fmt.Errorf("shardeddb: prepare on shard %d: %w", shardIDs[i], e)
		}
	}

	// Commit point: the ID becomes durable in the coordinator log.
	db.txnMu.Lock()
	db.txnPending[id] = true
	err := db.appendCommitLocked(id)
	if err != nil {
		delete(db.txnPending, id)
		db.txnMu.Unlock()
		db.abortPrepares(shardIDs, prepErrs, prepKey)
		db.txnAborts.Add(1)
		return fmt.Errorf("shardeddb: commit record: %w", err)
	}
	db.txnDirty++
	if db.txnDirty >= txnRotateEvery {
		db.rotateTxnLogLocked()
	}
	db.txnMu.Unlock()
	db.crossBatches.Add(1)

	// Phase 2: apply the data and retire the prepare record, one
	// engine batch per shard — they vanish or survive together.
	applyErrs := make([]error, len(shardIDs))
	for i, s := range shardIDs {
		wg.Add(1)
		go func(i, s int) {
			defer wg.Done()
			sub := parts[s]
			sub.Delete(prepKey)
			applyErrs[i] = db.shards[s].Apply(sub, syncWAL)
		}(i, s)
	}
	wg.Wait()
	for i, e := range applyErrs {
		if e != nil {
			// The transaction IS committed — its record is durable and
			// at least one shard may have applied. The ID stays pending
			// (never dropped by rotation) and the surviving prepares
			// roll forward at the next open. Callers see the error; the
			// shard's background-error machinery owns the rest.
			db.txnP2Failures.Add(1)
			return fmt.Errorf("shardeddb: committed batch %#x: apply on shard %d: %w",
				id, shardIDs[i], e)
		}
	}
	db.txnMu.Lock()
	delete(db.txnPending, id)
	db.txnMu.Unlock()
	return nil
}

// abortPrepares deletes the prepare record from every shard whose
// prepare succeeded. Best-effort: a shard that cannot delete keeps the
// record until open-time resolution aborts it (its ID is not in the
// coordinator log).
func (db *DB) abortPrepares(shardIDs []int, prepErrs []error, prepKey []byte) {
	for i, s := range shardIDs {
		if prepErrs[i] != nil {
			continue
		}
		var ab batch.Batch
		ab.Delete(prepKey)
		_ = db.shards[s].Apply(&ab, false)
	}
}

// appendCommitLocked writes and syncs one commit record. Caller holds
// txnMu.
func (db *DB) appendCommitLocked(id uint64) error {
	rec := make([]byte, 9)
	rec[0] = txnRecCommit
	binary.BigEndian.PutUint64(rec[1:], id)
	if err := db.txnLog.AddRecord(rec); err != nil {
		return err
	}
	if err := db.txnLog.Sync(); err != nil {
		return err
	}
	if db.space != nil {
		// Charge the appended record to the shared space budget (record
		// framing is a few bytes, ignored — rotation re-measures).
		db.space.GrowFile(metaSpaceKey(db.txnName), int64(len(rec)))
	}
	return nil
}

// metaSpaceKey namespaces coordinator files in the shared space
// manager ("meta/" cannot collide with the shards' "s<i>/" keys).
func metaSpaceKey(name string) string { return "meta/" + name }

// ---------------------------------------------------------------------
// Coordinator log lifecycle

func txnLogName(epoch uint32, gen int) string {
	return fmt.Sprintf("TXN-%06d-%03d", epoch, gen)
}

// readAll reads a whole file from fs.
func readAll(fs vfs.FS, name string) ([]byte, error) {
	size, err := fs.Size(name)
	if err != nil {
		return nil, err
	}
	f, err := fs.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, size)
	if size > 0 {
		if _, err := f.ReadAt(buf, 0); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// loadTxnLog reads the live coordinator log (via the pointer file) and
// returns the committed-ID set and the highest epoch seen. A missing
// pointer means a fresh store. Torn tails end the scan cleanly: any
// ID not fully synced was never acknowledged.
func (db *DB) loadTxnLog() (committed map[uint64]bool, maxEpoch uint32, err error) {
	committed = make(map[uint64]bool)
	cur, err := readAll(db.metaFS, txnCurName)
	if err != nil {
		if errors.Is(err, vfs.ErrNotExist) {
			return committed, 0, nil
		}
		return nil, 0, fmt.Errorf("shardeddb: read %s: %w", txnCurName, err)
	}
	name := string(cur)
	f, err := db.metaFS.Open(name)
	if err != nil {
		if errors.Is(err, vfs.ErrNotExist) {
			// Pointer to a missing log: treat as empty (the rename
			// landed but the store crashed before any commit).
			return committed, 0, nil
		}
		return nil, 0, fmt.Errorf("shardeddb: open txn log %s: %w", name, err)
	}
	defer f.Close()
	r := wal.NewReader(f)
	for {
		rec, rerr := r.ReadRecord()
		if rerr != nil {
			break // EOF or torn tail — scan ends
		}
		if len(rec) == 0 {
			continue
		}
		switch rec[0] {
		case txnRecEpoch:
			e, n := binary.Uvarint(rec[1:])
			if n > 0 && uint32(e) > maxEpoch {
				maxEpoch = uint32(e)
			}
		case txnRecCommit:
			if len(rec) == 9 {
				committed[binary.BigEndian.Uint64(rec[1:])] = true
			}
		}
	}
	db.txnName = name
	return committed, maxEpoch, nil
}

// writeTxnLog creates a fresh coordinator log carrying epoch and the
// still-pending committed IDs, atomically repoints TXNCUR at it, and
// removes the previous log. Called with txnMu held (or before the DB
// is shared).
func (db *DB) writeTxnLog(epoch uint32, gen int, pending []uint64) error {
	name := txnLogName(epoch, gen)
	f, err := db.metaFS.Create(name)
	if err != nil {
		return fmt.Errorf("shardeddb: create txn log: %w", err)
	}
	w := wal.NewWriter(f)
	rec := make([]byte, 1, 10)
	rec[0] = txnRecEpoch
	rec = binary.AppendUvarint(rec, uint64(epoch))
	if err := w.AddRecord(rec); err != nil {
		f.Close()
		return err
	}
	for _, id := range pending {
		r := make([]byte, 9)
		r[0] = txnRecCommit
		binary.BigEndian.PutUint64(r[1:], id)
		if err := w.AddRecord(r); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Sync(); err != nil {
		f.Close()
		return err
	}

	// Atomic pointer swap: the new log is fully durable before the
	// pointer moves, so a crash mid-rotation leaves the old log (and
	// every ID it carries) authoritative.
	tmp := txnCurName + ".tmp"
	pf, err := db.metaFS.Create(tmp)
	if err != nil {
		f.Close()
		return err
	}
	if _, err = pf.Write([]byte(name)); err == nil {
		err = pf.Sync()
	}
	if cerr := pf.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = db.metaFS.Rename(tmp, txnCurName)
	}
	if err != nil {
		f.Close()
		return fmt.Errorf("shardeddb: point %s: %w", txnCurName, err)
	}

	if db.txnFile != nil {
		_ = db.txnFile.Close()
	}
	if db.txnName != "" && db.txnName != name {
		_ = db.metaFS.Remove(db.txnName)
		if db.space != nil {
			db.space.UntrackFile(metaSpaceKey(db.txnName))
		}
	}
	db.txnFile, db.txnLog, db.txnName = f, w, name
	if db.space != nil {
		if size, err := db.metaFS.Size(name); err == nil {
			db.space.TrackFile(metaSpaceKey(name), size)
		}
	}
	return nil
}

// rotateTxnLogLocked compacts the coordinator log: forces every
// shard's WAL down so completed phase-2 prepare deletions are durable,
// then rewrites the log with only the still-pending IDs. Failures are
// non-fatal — the old log just keeps growing until the next attempt.
// Caller holds txnMu.
func (db *DB) rotateTxnLogLocked() {
	db.txnDirty = 0
	for _, s := range db.shards {
		var sb batch.Batch
		sb.Put(syncMarkerKey, nil)
		if err := s.Apply(&sb, true); err != nil {
			return // shard unhealthy; retry at a later rotation
		}
	}
	pending := make([]uint64, 0, len(db.txnPending))
	for id := range db.txnPending {
		pending = append(pending, id)
	}
	db.txnGen++
	if err := db.writeTxnLog(db.txnEpoch, db.txnGen, pending); err != nil {
		return
	}
	db.txnLogRotation.Add(1)
}

// ---------------------------------------------------------------------
// Open-time resolution

// recoverTxns resolves every prepare record surviving from the last
// run — roll committed transactions forward, abort the rest — and
// starts a fresh coordinator epoch.
func (db *DB) recoverTxns() error {
	committed, maxEpoch, err := db.loadTxnLog()
	if err != nil {
		return err
	}

	for i, s := range db.shards {
		preps, err := db.scanPrepares(s)
		if err != nil {
			return fmt.Errorf("shardeddb: scan shard %d prepares: %w", i, err)
		}
		for _, p := range preps {
			if committed[p.id] {
				// Roll forward: re-apply the stored sub-batch and
				// retire the prepare, durably. Idempotent — the
				// prepare's sync means nothing after it in this
				// shard's WAL survived, so nothing newer is clobbered.
				sub, err := batch.FromRepr(p.payload)
				if err != nil {
					return fmt.Errorf("shardeddb: shard %d: decode prepared batch %#x: %w", i, p.id, err)
				}
				var fb batch.Batch
				fb.Append(sub)
				fb.Delete(prepKeyFor(p.id))
				if err := s.Apply(&fb, true); err != nil {
					return fmt.Errorf("shardeddb: shard %d: roll forward batch %#x: %w", i, p.id, err)
				}
				db.rolledForward.Add(1)
			} else {
				// Presumed abort: the commit record never became
				// durable, so no shard applied phase 2.
				var ab batch.Batch
				ab.Delete(prepKeyFor(p.id))
				if err := s.Apply(&ab, true); err != nil {
					return fmt.Errorf("shardeddb: shard %d: abort batch %#x: %w", i, p.id, err)
				}
				db.abortedAtOpen.Add(1)
			}
		}
	}

	// Fresh epoch; nothing is pending after full resolution.
	db.txnEpoch = maxEpoch + 1
	db.txnGen = 0
	db.txnMu.Lock()
	defer db.txnMu.Unlock()
	return db.writeTxnLog(db.txnEpoch, 0, nil)
}

type prepared struct {
	id      uint64
	payload []byte
}

// scanPrepares collects the surviving prepare records in one shard.
func (db *DB) scanPrepares(s *engine.DB) ([]prepared, error) {
	it, err := s.NewIter()
	if err != nil {
		return nil, err
	}
	defer it.Close()
	var out []prepared
	for it.SeekGE(prepPrefix); it.Valid(); it.Next() {
		id, ok := prepKeyID(it.Key())
		if !ok {
			break // past the prepare keyspace
		}
		payload := make([]byte, len(it.Value()))
		copy(payload, it.Value())
		out = append(out, prepared{id: id, payload: payload})
	}
	return out, it.Error()
}
