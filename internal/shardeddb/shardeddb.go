// Package shardeddb partitions the keyspace across N independent
// engine.DB instances ("shards") behind the engine's public API. It is
// the scale-out answer to the paper's Algorithm-2 finding: every write
// in a single engine funnels through one group-commit leader, so on
// fast devices (PCIe flash, 3D XPoint) the writer queue — not the
// device — is the ceiling. Range sharding gives each shard its own
// writer queue, WAL, memtable and LSM tree, multiplying the commit
// paths while keys stay ordered for range scans (a full iteration is
// the plain concatenation of the shards' iterations).
//
// What is NOT duplicated per shard — shared resources:
//
//   - One block cache (engine Options.BlockCache + CacheID salting),
//     so hot shards can use the whole memory budget.
//   - One background worker pool (internal/bgpool): each shard still
//     runs its own flush/compaction goroutines, but a job must hold a
//     pool token to execute, and tokens go to the highest-priority
//     waiter — flushes before compactions, the shard nearest its stall
//     trigger first. Cross-shard scheduling by L0 pressure.
//   - One write controller (throttle.Controller.SetSourceState): a
//     global delayed-write budget where the worst shard's stall state
//     governs, so total foreground ingest respects one global rate.
//   - One event/metrics/Prometheus stream: every engine event carries
//     a `shard` dimension, and a single HTTP ops plane (internal/obs)
//     serves the combined /metrics, /stats, /events and /healthz.
//
// Cross-shard atomic batches use a two-phase commit with presumed
// abort (txn.go): prepare records carrying the sub-batch payload are
// made durable in every participant, then a commit record in the
// coordinator log (meta namespace) is the commit point, then the data
// applies. Crash anywhere never exposes a torn batch: recovery at open
// rolls committed transactions forward and aborts the rest.
//
// Layout: one underlying filesystem holds every shard under a
// "shard-NNN/" prefix (vfs.NewPrefix) plus a "meta/" namespace for the
// coordinator log, so a single crash snapshot captures the whole store
// at one instant. Callers on a real OS filesystem can instead hand
// each shard its own directory (Options.ShardFS/MetaFS).
package shardeddb

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"xpointdb/internal/batch"
	"xpointdb/internal/bgpool"
	"xpointdb/internal/cache"
	"xpointdb/internal/clock"
	"xpointdb/internal/costmodel"
	"xpointdb/internal/engine"
	"xpointdb/internal/keys"
	"xpointdb/internal/obs"
	"xpointdb/internal/throttle"
	"xpointdb/internal/vfs"
	"xpointdb/internal/wal"
)

// ErrNotFound re-exports the engine's miss sentinel.
var ErrNotFound = engine.ErrNotFound

// ErrClosed is returned by operations on a closed DB.
var ErrClosed = errors.New("shardeddb: database is closed")

// ErrReservedKey rejects user keys in the internal 0x00-prefixed
// keyspace, which the two-phase commit machinery owns (prepare
// records, WAL-sync markers).
var ErrReservedKey = errors.New("shardeddb: keys beginning with 0x00 are reserved")

// Options configures a sharded DB.
type Options struct {
	// Shards is the number of engine instances (≥ 1).
	Shards int

	// Boundaries are the Shards-1 split keys, ascending: shard i holds
	// keys in [Boundaries[i-1], Boundaries[i]). Empty with Shards > 1
	// defaults to UniformBoundaries(Shards).
	Boundaries [][]byte

	// Engine is the per-shard option template. FS is the base
	// filesystem carved into "shard-NNN/" + "meta/" prefixes (unless
	// ShardFS/MetaFS below override the layout). BlockCacheSize is the
	// TOTAL budget of the one shared cache. EventListener/
	// EventSinkQueue/ObsAddr configure the single shared event stream
	// and ops server. BlockCache, Controller, BGPool, CacheID,
	// StallSource, ShardTag and CompactionPacer must be left zero —
	// the sharded layer owns them (CompactionRateBytesPerSec becomes
	// one shared pacer across every shard).
	Engine engine.Options

	// ShardFS, if non-nil, supplies shard i's filesystem instead of
	// the default prefix layout (e.g. one real directory per device).
	ShardFS func(i int) (vfs.FS, error)
	// MetaFS, if non-nil, holds the coordinator state (transaction
	// log) instead of the default "meta/" prefix of Engine.FS.
	MetaFS vfs.FS

	// PoolSlots sizes the shared background pool. Default
	// max(2, Shards) — enough that a single shard is never starved,
	// while 2×Shards worker goroutines contend for Shards tokens.
	PoolSlots int
}

// UniformBoundaries splits the full byte keyspace into n ranges by
// first byte — the right default when keys are uniformly distributed
// in their leading byte. Workload-aware callers should pass explicit
// boundaries instead.
func UniformBoundaries(n int) [][]byte {
	b := make([][]byte, 0, n-1)
	for i := 1; i < n; i++ {
		b = append(b, []byte{byte(256 * i / n)})
	}
	return b
}

// DB is a range-sharded store over N engine instances.
type DB struct {
	opts       Options
	clk        clock.Clock
	shards     []*engine.DB
	boundaries [][]byte

	blocks     *cache.Cache
	pool       *bgpool.Pool
	controller *throttle.Controller
	space      *engine.SpaceManager
	pacer      *costmodel.Pacer // shared compaction I/O rate limit (nil = unlimited)

	ev     eventsSink // shared tagged event stream (serve.go)
	hub    *obs.Hub
	obsSrv *obs.Server

	metaFS vfs.FS

	// Coordinator (two-phase commit) state — txn.go.
	txnMu      sync.Mutex
	txnLog     *wal.Writer
	txnFile    vfs.File
	txnName    string
	txnEpoch   uint32
	txnGen     int // rotation generation within the epoch
	txnCounter uint32
	txnPending map[uint64]bool
	txnDirty   int // commits since last rotation

	closed atomic.Bool

	// Cross-shard transaction counters (Prometheus + tests).
	crossBatches   atomic.Int64
	txnAborts      atomic.Int64
	txnP2Failures  atomic.Int64
	rolledForward  atomic.Int64
	abortedAtOpen  atomic.Int64
	eventsDropped  atomic.Int64
	txnLogRotation atomic.Int64
}

// Open opens (creating if necessary) a sharded store.
func Open(opts Options) (*DB, error) {
	if opts.Shards < 1 {
		return nil, errors.New("shardeddb: Options.Shards must be >= 1")
	}
	if opts.Engine.FS == nil && (opts.ShardFS == nil || opts.MetaFS == nil) {
		return nil, errors.New("shardeddb: Options.Engine.FS is required (or ShardFS+MetaFS)")
	}
	if opts.Engine.BlockCache != nil || opts.Engine.Controller != nil ||
		opts.Engine.BGPool != nil || opts.Engine.CacheID != 0 || opts.Engine.ShardTag != 0 ||
		opts.Engine.SpaceManager != nil || opts.Engine.CompactionPacer != nil {
		return nil, errors.New("shardeddb: shared-resource engine options are owned by the sharded layer")
	}
	if len(opts.Boundaries) == 0 && opts.Shards > 1 {
		opts.Boundaries = UniformBoundaries(opts.Shards)
	}
	if len(opts.Boundaries) != opts.Shards-1 {
		return nil, fmt.Errorf("shardeddb: %d boundaries for %d shards (want %d)",
			len(opts.Boundaries), opts.Shards, opts.Shards-1)
	}
	for i, b := range opts.Boundaries {
		if len(b) == 0 || b[0] == 0 {
			return nil, fmt.Errorf("shardeddb: boundary %d empty or in reserved keyspace", i)
		}
		if i > 0 && bytes.Compare(opts.Boundaries[i-1], b) >= 0 {
			return nil, fmt.Errorf("shardeddb: boundaries not strictly ascending at %d", i)
		}
	}
	clk := opts.Engine.Clock
	if clk == nil {
		clk = clock.Real{}
	}

	db := &DB{
		opts:       opts,
		clk:        clk,
		boundaries: opts.Boundaries,
		txnPending: make(map[uint64]bool),
	}

	// Shared resources.
	cacheSize := opts.Engine.BlockCacheSize
	if cacheSize == 0 {
		cacheSize = engine.DefaultOptions(nil).BlockCacheSize
	}
	if cacheSize > 0 {
		db.blocks = cache.New(cacheSize)
	}
	slots := opts.PoolSlots
	if slots <= 0 {
		slots = opts.Shards
		if slots < 2 {
			slots = 2
		}
	}
	db.pool = bgpool.New(clk, slots)
	// One compaction-I/O rate limit across every shard: the configured
	// bytes/sec is a device budget, not a per-shard one, so shards
	// sharing a device pace against the same virtual-time ledger.
	db.pacer = costmodel.NewPacer(opts.Engine.CompactionRateBytesPerSec)
	if opts.Engine.MaxAllowedSpace > 0 {
		// One space budget across every shard: a hot shard's files and
		// reservations consume headroom all shards observe, and each
		// shard's ladder subscription folds the shared state into its
		// own stall computation.
		db.space = engine.NewSpaceManager(opts.Engine.MaxAllowedSpace, opts.Engine.FreeSpaceThreshold)
	}
	db.wireEvents() // serve.go: hub + tagged sink
	tcfg := throttle.Config{
		Mode:             opts.Engine.ThrottleMode,
		DelayedWriteRate: opts.Engine.DelayedWriteRate,
		FloorRate:        opts.Engine.TwoStageFloorRate,
	}
	if db.ev != nil {
		tcfg.RateChanged = db.emitRateChange
	}
	db.controller = throttle.New(clk, tcfg)

	// Filesystems: default layout is one base FS with per-shard
	// prefixes plus a meta namespace.
	db.metaFS = opts.MetaFS
	if db.metaFS == nil {
		db.metaFS = vfs.NewPrefix(opts.Engine.FS, "meta/")
	}

	// Open every shard with the shared resources injected.
	db.shards = make([]*engine.DB, opts.Shards)
	for i := range db.shards {
		var sfs vfs.FS
		var err error
		if opts.ShardFS != nil {
			sfs, err = opts.ShardFS(i)
		} else {
			sfs = vfs.NewPrefix(opts.Engine.FS, fmt.Sprintf("shard-%03d/", i))
		}
		if err == nil {
			db.shards[i], err = engine.Open(db.shardOptions(i, sfs))
		}
		if err != nil {
			for j := 0; j < i; j++ {
				_ = db.shards[j].Close()
			}
			db.closeShared()
			return nil, fmt.Errorf("shardeddb: open shard %d: %w", i, err)
		}
	}

	// Resolve in-flight cross-shard transactions from the last run,
	// then start a fresh coordinator epoch.
	if err := db.recoverTxns(); err != nil {
		for _, s := range db.shards {
			_ = s.Close()
		}
		db.closeShared()
		return nil, err
	}

	if err := db.startObsServer(); err != nil {
		_ = db.Close()
		return nil, err
	}
	return db, nil
}

// shardOptions builds shard i's engine options from the template.
func (db *DB) shardOptions(i int, fs vfs.FS) engine.Options {
	o := db.opts.Engine
	o.FS = fs
	o.Clock = db.clk
	// Shared block cache with a per-shard key salt; the shard must not
	// size its own.
	o.BlockCache = db.blocks
	o.BlockCacheSize = 0
	o.CacheID = uint64(i+1) << 48
	// Shared write controller, background pool and space budget.
	o.Controller = db.controller
	o.StallSource = i
	o.BGPool = db.pool
	o.SpaceManager = db.space
	o.CompactionPacer = db.pacer
	// One event stream, one ops server — owned here, not per shard.
	o.ObsAddr = ""
	o.EventListener = db.shardListener(i)
	if o.EventListener != nil {
		// The shared hub already decouples slow sinks; per-shard
		// forwarding is synchronous and non-blocking.
		o.EventSinkQueue = -1
	}
	// WALFS sharing one device across shards is fine; a per-shard WAL
	// namespace keeps names distinct when the caller set WALFS.
	if o.WALFS != nil {
		o.WALFS = vfs.NewPrefix(o.WALFS, fmt.Sprintf("shard-%03d/", i))
	}
	return o
}

// closeShared tears down resources owned by the sharded layer.
func (db *DB) closeShared() {
	if db.hub != nil {
		db.hub.Close()
	}
	if db.obsSrv != nil {
		_ = db.obsSrv.Close()
	}
}

// NumShards returns the shard count.
func (db *DB) NumShards() int { return len(db.shards) }

// Shard exposes shard i's engine (stats, tests, manual compaction).
func (db *DB) Shard(i int) *engine.DB { return db.shards[i] }

// ShardForKey returns the index of the shard owning key.
func (db *DB) ShardForKey(key []byte) int {
	// First boundary strictly greater than key; the key lives in that
	// boundary's shard.
	return sort.Search(len(db.boundaries), func(i int) bool {
		return bytes.Compare(key, db.boundaries[i]) < 0
	})
}

// ShardRange returns shard i's key range [start, end); start is empty
// for shard 0 and end is nil (unbounded) for the last shard.
func (db *DB) ShardRange(i int) (start, end []byte) {
	if i > 0 {
		start = db.boundaries[i-1]
	}
	if i < len(db.boundaries) {
		end = db.boundaries[i]
	}
	return start, end
}

// checkKey rejects reserved keys.
func checkKey(key []byte) error {
	if len(key) > 0 && key[0] == 0 {
		return ErrReservedKey
	}
	return nil
}

// Get returns the value for key.
func (db *DB) Get(key []byte) ([]byte, error) {
	if err := checkKey(key); err != nil {
		return nil, err
	}
	return db.shards[db.ShardForKey(key)].Get(key)
}

// Has reports whether key exists.
func (db *DB) Has(key []byte) (bool, error) {
	if err := checkKey(key); err != nil {
		return false, err
	}
	return db.shards[db.ShardForKey(key)].Has(key)
}

// Put inserts or overwrites key.
func (db *DB) Put(key, value []byte) error {
	if err := checkKey(key); err != nil {
		return err
	}
	return db.shards[db.ShardForKey(key)].Put(key, value)
}

// Delete removes key.
func (db *DB) Delete(key []byte) error {
	if err := checkKey(key); err != nil {
		return err
	}
	return db.shards[db.ShardForKey(key)].Delete(key)
}

// MultiGet looks up every key, returning parallel values/errors
// slices. Lookups are grouped by shard and the groups run
// concurrently, one goroutine per shard touched.
func (db *DB) MultiGet(keys ...[]byte) ([][]byte, []error) {
	values := make([][]byte, len(keys))
	errs := make([]error, len(keys))
	byShard := make(map[int][]int)
	for i, k := range keys {
		if err := checkKey(k); err != nil {
			errs[i] = err
			continue
		}
		s := db.ShardForKey(k)
		byShard[s] = append(byShard[s], i)
	}
	var wg sync.WaitGroup
	for s, idxs := range byShard {
		wg.Add(1)
		go func(s int, idxs []int) {
			defer wg.Done()
			for _, i := range idxs {
				values[i], errs[i] = db.shards[s].Get(keys[i])
			}
		}(s, idxs)
	}
	wg.Wait()
	return values, errs
}

// splitBatch routes b's operations into per-shard sub-batches.
func (db *DB) splitBatch(b *batch.Batch) (map[int]*batch.Batch, error) {
	parts := make(map[int]*batch.Batch)
	err := b.Iterate(func(kind keys.Kind, key, value []byte) error {
		if err := checkKey(key); err != nil {
			return err
		}
		s := db.ShardForKey(key)
		sub := parts[s]
		if sub == nil {
			sub = &batch.Batch{}
			parts[s] = sub
		}
		if kind == keys.KindDelete {
			sub.Delete(key)
		} else {
			sub.Put(key, value)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return parts, nil
}

// Apply atomically applies b. Batches confined to one shard take that
// shard's normal group-commit path; batches spanning shards commit via
// the two-phase protocol (txn.go) — all of b survives a crash, or none
// of it does.
func (db *DB) Apply(b *batch.Batch, syncWAL bool) error {
	if db.closed.Load() {
		return ErrClosed
	}
	parts, err := db.splitBatch(b)
	if err != nil {
		return err
	}
	switch len(parts) {
	case 0:
		return nil
	case 1:
		for s, sub := range parts {
			return db.shards[s].Apply(sub, syncWAL)
		}
	}
	return db.applyCross(parts, syncWAL)
}

// Flush flushes every shard's memtable.
func (db *DB) Flush() error {
	for i, s := range db.shards {
		if err := s.Flush(); err != nil {
			return fmt.Errorf("shardeddb: flush shard %d: %w", i, err)
		}
	}
	return nil
}

// BackgroundError returns the first shard's latched background error,
// or nil when every shard is healthy.
func (db *DB) BackgroundError() error {
	for _, s := range db.shards {
		if err := s.BackgroundError(); err != nil {
			return err
		}
	}
	return nil
}

// Health returns the worst health across shards.
func (db *DB) Health() engine.Health {
	worst := engine.Healthy
	for _, s := range db.shards {
		if h := s.Health(); h > worst {
			worst = h
		}
	}
	return worst
}

// TxnStats reports cross-shard transaction counters: committed
// cross-shard batches, aborts (prepare/commit-point failures),
// recovery roll-forwards and recovery aborts.
func (db *DB) TxnStats() (cross, aborts, rolledForward, abortedAtOpen int64) {
	return db.crossBatches.Load(), db.txnAborts.Load(),
		db.rolledForward.Load(), db.abortedAtOpen.Load()
}

// CacheStats exposes the shared block cache (nil-safe).
func (db *DB) CacheStats() (used int64, hits, misses int64) {
	if db.blocks == nil {
		return 0, 0, 0
	}
	h, m := db.blocks.Stats()
	return db.blocks.Used(), h, m
}

// Controller exposes the shared write controller.
func (db *DB) Controller() *throttle.Controller { return db.controller }

// Pool exposes the shared background pool.
func (db *DB) Pool() *bgpool.Pool { return db.pool }

// SpaceManager exposes the shared space budget manager, or nil when no
// budget is configured.
func (db *DB) SpaceManager() *engine.SpaceManager { return db.space }

// Close closes every shard and the coordinator state. The shards close
// in parallel — each drains its own writers and workers.
func (db *DB) Close() error {
	if db.closed.Swap(true) {
		return ErrClosed
	}
	errs := make([]error, len(db.shards))
	var wg sync.WaitGroup
	for i, s := range db.shards {
		wg.Add(1)
		go func(i int, s *engine.DB) {
			defer wg.Done()
			errs[i] = s.Close()
		}(i, s)
	}
	wg.Wait()
	var err error
	for i, e := range errs {
		if e != nil && err == nil {
			err = fmt.Errorf("shardeddb: close shard %d: %w", i, e)
		}
	}
	db.txnMu.Lock()
	if db.txnFile != nil {
		if serr := db.txnLog.Sync(); serr != nil && err == nil {
			err = fmt.Errorf("shardeddb: close: txn log sync: %w", serr)
		}
		_ = db.txnFile.Close()
		db.txnFile = nil
	}
	db.txnMu.Unlock()
	db.closeShared()
	return err
}
