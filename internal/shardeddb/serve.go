package shardeddb

import (
	"fmt"
	"strings"

	"xpointdb/internal/engine"
	"xpointdb/internal/events"
	"xpointdb/internal/obs"
	"xpointdb/internal/throttle"
)

// eventsSink is the shared tagged stream every shard forwards into.
type eventsSink = events.Listener

// wireEvents builds the single event stream for the whole store,
// mirroring the engine's own hub wiring (engine/serve.go): the
// caller's listener plus the ops plane hang off one obs.Hub, and each
// shard emits synchronously into it through a tagging forwarder that
// stamps the shard dimension. Called from Open before shards exist.
func (db *DB) wireEvents() {
	listener := db.opts.Engine.EventListener
	async := listener != nil && db.opts.Engine.EventSinkQueue >= 0
	needHub := async || db.opts.Engine.ObsAddr != ""
	if needHub {
		hcfg := obs.HubConfig{SinkQueue: db.opts.Engine.EventSinkQueue}
		if async {
			hcfg.Sink = listener
			hcfg.OnSinkDrop = func() { db.eventsDropped.Add(1) }
		}
		db.hub = obs.NewHub(hcfg)
	}
	switch {
	case async:
		db.ev = db.hub
	case listener != nil && db.hub != nil:
		db.ev = events.Tee(listener, db.hub)
	case listener != nil:
		db.ev = listener
	case db.hub != nil:
		db.ev = db.hub
	}
}

// shardListener returns the tagging forwarder installed as shard i's
// EventListener: it stamps Shard (1-based) and forwards to the shared
// stream. Nil when no stream is configured, so emission stays free.
func (db *DB) shardListener(i int) events.Listener {
	if db.ev == nil {
		return nil
	}
	shard := i + 1
	return events.Func(func(e events.Event) {
		e.Shard = shard
		db.ev.Emit(e)
	})
}

// emitRateChange surfaces the shared controller's Algorithm 1 steps.
// Shard is left 0: the rate is a store-wide property.
func (db *DB) emitRateChange(oldRate, newRate float64, behind bool) {
	if db.ev == nil {
		return
	}
	factor := throttle.Inc
	if behind {
		factor = throttle.Dec
	}
	db.ev.Emit(events.Event{
		TS:   db.clk.Now(),
		Kind: events.KindRateChange,
		Rate: &events.Rate{OldRate: oldRate, NewRate: newRate, Factor: factor, Behind: behind},
	})
}

// startObsServer binds the combined HTTP ops plane when
// Options.Engine.ObsAddr is set.
func (db *DB) startObsServer() error {
	if db.opts.Engine.ObsAddr == "" {
		return nil
	}
	srv, err := obs.Serve(db.opts.Engine.ObsAddr, obs.Config{
		MetricsText: db.WritePrometheus,
		StatsText:   db.StatsReport,
		Health: func() (bool, string) {
			h := db.Health()
			return h == engine.Healthy, fmt.Sprintf("%v (%d shards)", h, len(db.shards))
		},
		Hub: db.hub,
	})
	if err != nil {
		return fmt.Errorf("shardeddb: ops server: %w", err)
	}
	db.obsSrv = srv
	return nil
}

// ObsAddr returns the bound ops-server address ("" when disabled).
func (db *DB) ObsAddr() string {
	if db.obsSrv == nil {
		return ""
	}
	return db.obsSrv.Addr()
}

// SyncEvents blocks until every event emitted so far reached the
// configured listener (async sink only; no-op otherwise).
func (db *DB) SyncEvents() {
	if db.hub != nil {
		db.hub.Sync()
	}
}

// StatsReport renders the combined human-readable report: shared
// resources first, then each shard's full engine report.
func (db *DB) StatsReport() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== sharded store: %d shards ==\n", len(db.shards))
	if db.blocks != nil {
		fmt.Fprintf(&b, "shared block cache: %s\n", db.blocks.String())
	}
	busy, waiting, grants := db.pool.Stats()
	fmt.Fprintf(&b, "bg pool: slots=%d busy=%d waiting=%d grants=%d\n",
		db.pool.Size(), busy, waiting, grants)
	for i := range db.shards {
		w, g := db.pool.TagStats(i)
		fmt.Fprintf(&b, "bg pool shard %d: waiting=%d grants=%d\n", i, w, g)
	}
	if db.pacer != nil {
		fmt.Fprintf(&b, "compaction pacer: %dB/s shared\n", db.pacer.Rate())
	}
	cross, aborts, rf, ab := db.TxnStats()
	fmt.Fprintf(&b, "cross-shard txns: committed=%d aborted=%d rolled_forward=%d aborted_at_open=%d pending=%d\n",
		cross, aborts, rf, ab, db.pendingTxns())
	total, delayedOps, adjustments := db.controller.Stats()
	fmt.Fprintf(&b, "write controller: state=%v rate=%.0fB/s delay_total=%v delayed_ops=%d adjustments=%d\n",
		db.controller.CurrentState(), db.controller.Rate(), total, delayedOps, adjustments)
	for i, s := range db.shards {
		start, end := db.ShardRange(i)
		fmt.Fprintf(&b, "\n-- shard %d [%q, %q) --\n", i, start, end)
		b.WriteString(s.StatsReport())
	}
	return b.String()
}

func (db *DB) pendingTxns() int {
	db.txnMu.Lock()
	defer db.txnMu.Unlock()
	return len(db.txnPending)
}
