package shardeddb

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"xpointdb/internal/batch"
	"xpointdb/internal/clock"
	"xpointdb/internal/engine"
	"xpointdb/internal/faultfs"
	"xpointdb/internal/storage"
	"xpointdb/internal/throttle"
	"xpointdb/internal/vfs"
)

// modelBoundaries split the test keyspace (key-0000 … key-1999) into
// four ranges so random keys spread across all shards and random
// batches routinely span several of them.
func modelBoundaries() [][]byte {
	return [][]byte{[]byte("key-0500"), []byte("key-1000"), []byte("key-1500")}
}

func modelOptions(fs vfs.FS) Options {
	eo := engine.DefaultOptions(fs)
	eo.MemtableSize = 32 << 10 // frequent flushes
	eo.TargetFileSize = 32 << 10
	eo.BaseLevelBytes = 64 << 10
	eo.ThrottleMode = throttle.ModeNone
	eo.SyncWAL = true
	return Options{Shards: 4, Boundaries: modelBoundaries(), Engine: eo}
}

// TestShardedRandomOpsAgainstModel is the sharded twin of the engine's
// model test: a long random sequence of puts, deletes and atomic
// batches — many of them spanning shards and therefore committing
// through the two-phase protocol — checked against an in-memory
// reference model after each phase. The store runs on one shared
// faultfs (all four shard directories plus the coordinator's meta
// namespace crash together, as one filesystem would), and crash phases
// exercise progressively harsher images: clean, partial-sync, torn.
// With SyncWAL=true every acknowledged write — including every
// acknowledged cross-shard batch — must survive all three unchanged,
// and no torn batch may ever surface partially.
func TestShardedRandomOpsAgainstModel(t *testing.T) {
	newFFS := func(inner *vfs.MemFS, seed int64) *faultfs.FS {
		t.Helper()
		ffs, err := faultfs.New(inner, seed)
		if err != nil {
			t.Fatalf("faultfs.New: %v", err)
		}
		return ffs
	}
	mem := vfs.NewMem(storage.New(clock.Real{}, storage.Null()))
	fs := newFFS(mem, 54321)
	db, err := Open(modelOptions(fs))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	model := make(map[string]string)
	rng := rand.New(rand.NewSource(54321))
	crossBatches := 0

	checkAll := func(phase string) {
		t.Helper()
		for k, want := range model {
			v, err := db.Get([]byte(k))
			if err != nil {
				t.Fatalf("%s: Get(%q) = %v", phase, k, err)
			}
			if string(v) != want {
				t.Fatalf("%s: Get(%q) = %q, want %q", phase, k, v, want)
			}
		}
		for i := 0; i < 20; i++ {
			k := fmt.Sprintf("absent-%d", rng.Intn(1000))
			if _, err := db.Get([]byte(k)); err != ErrNotFound {
				t.Fatalf("%s: absent key %q: %v", phase, k, err)
			}
		}
		// Full cross-shard scan must equal the sorted model — this is
		// also what proves 2PC bookkeeping keys never leak out.
		var want []string
		for k := range model {
			want = append(want, k)
		}
		sort.Strings(want)
		it, err := db.NewIter()
		if err != nil {
			t.Fatalf("%s: NewIter: %v", phase, err)
		}
		i := 0
		for it.SeekToFirst(); it.Valid(); it.Next() {
			if i >= len(want) {
				t.Fatalf("%s: scan has extra key %q", phase, it.Key())
			}
			if string(it.Key()) != want[i] {
				t.Fatalf("%s: scan[%d] = %q, want %q", phase, i, it.Key(), want[i])
			}
			if string(it.Value()) != model[want[i]] {
				t.Fatalf("%s: scan value for %q = %q", phase, it.Key(), it.Value())
			}
			i++
		}
		if err := it.Error(); err != nil {
			t.Fatalf("%s: iter error: %v", phase, err)
		}
		it.Close()
		if i != len(want) {
			t.Fatalf("%s: scan saw %d keys, model has %d", phase, i, len(want))
		}
	}

	key := func() string { return fmt.Sprintf("key-%04d", rng.Intn(2000)) }

	for phase := 0; phase < 6; phase++ {
		for op := 0; op < 600; op++ {
			switch rng.Intn(10) {
			case 0, 1: // delete
				k := key()
				if err := db.Delete([]byte(k)); err != nil {
					t.Fatal(err)
				}
				delete(model, k)
			case 2, 3: // atomic batch, frequently cross-shard
				var b batch.Batch
				n := rng.Intn(10) + 1
				type rec struct {
					k, v string
					del  bool
				}
				var recs []rec
				shards := map[int]bool{}
				for j := 0; j < n; j++ {
					k := key()
					shards[db.ShardForKey([]byte(k))] = true
					if rng.Intn(4) == 0 {
						b.Delete([]byte(k))
						recs = append(recs, rec{k: k, del: true})
					} else {
						v := fmt.Sprintf("batch-%d-%d", phase, op)
						b.Put([]byte(k), []byte(v))
						recs = append(recs, rec{k: k, v: v})
					}
				}
				if len(shards) > 1 {
					crossBatches++
				}
				if err := db.Apply(&b, true); err != nil {
					t.Fatal(err)
				}
				for _, r := range recs {
					if r.del {
						delete(model, r.k)
					} else {
						model[r.k] = r.v
					}
				}
			default: // put
				k := key()
				v := fmt.Sprintf("v-%d-%d-%060d", phase, op, rng.Intn(1000))
				if err := db.Put([]byte(k), []byte(v)); err != nil {
					t.Fatal(err)
				}
				model[k] = v
			}
		}
		checkAll(fmt.Sprintf("phase %d", phase))

		// Every other phase: crash the whole store (all shards and the
		// coordinator log freeze at one instant) and reopen from a
		// progressively harsher image.
		if phase%2 == 1 {
			var mode faultfs.CrashOpts
			var modeName string
			switch phase {
			case 1:
				mode, modeName = faultfs.CrashOpts{}, "clean"
			case 3:
				mode, modeName = faultfs.CrashOpts{KeepUnsynced: true}, "partial-sync"
			default:
				mode, modeName = faultfs.CrashOpts{KeepUnsynced: true, Torn: true}, "torn"
			}
			snap := fs.ForceCrash()
			_ = db.Close() // post-crash close may report the frozen fs
			dev := storage.New(clock.Real{}, storage.Null())
			img, err := snap.Materialize(dev, rng, mode)
			if err != nil {
				t.Fatalf("phase %d: materialize %s crash: %v", phase, modeName, err)
			}
			fs = newFFS(img, 54321+int64(phase))
			db, err = Open(modelOptions(fs))
			if err != nil {
				t.Fatalf("reopen after %s crash: %v", modeName, err)
			}
			checkAll(fmt.Sprintf("phase %d post-crash (%s)", phase, modeName))
		}
	}
	if crossBatches == 0 {
		t.Fatal("test never exercised a cross-shard batch")
	}
	db.Close()
}
