// Package batch implements WriteBatch, the atomic multi-operation
// write unit. Its wire encoding — an 8-byte base sequence number, a
// 4-byte count, then one record per operation — follows the
// LevelDB/RocksDB layout and doubles as the WAL payload, so a batch is
// appended to the log verbatim and replayed on recovery.
package batch

import (
	"encoding/binary"
	"fmt"

	"xpointdb/internal/keys"
)

// headerLen is the fixed prefix: 8-byte sequence + 4-byte count.
const headerLen = 12

// Batch is a sequence of Put/Delete operations applied atomically. The
// zero value is an empty, usable batch.
type Batch struct {
	rep []byte
}

func (b *Batch) ensureHeader() {
	if len(b.rep) == 0 {
		b.rep = make([]byte, headerLen, headerLen+64)
	}
}

// Put queues a key/value insertion.
func (b *Batch) Put(key, value []byte) {
	b.ensureHeader()
	b.setCount(b.Count() + 1)
	b.rep = append(b.rep, byte(keys.KindSet))
	b.rep = binary.AppendUvarint(b.rep, uint64(len(key)))
	b.rep = append(b.rep, key...)
	b.rep = binary.AppendUvarint(b.rep, uint64(len(value)))
	b.rep = append(b.rep, value...)
}

// Delete queues a tombstone for key.
func (b *Batch) Delete(key []byte) {
	b.ensureHeader()
	b.setCount(b.Count() + 1)
	b.rep = append(b.rep, byte(keys.KindDelete))
	b.rep = binary.AppendUvarint(b.rep, uint64(len(key)))
	b.rep = append(b.rep, key...)
}

// Count returns the number of queued operations.
func (b *Batch) Count() uint32 {
	if len(b.rep) < headerLen {
		return 0
	}
	return binary.LittleEndian.Uint32(b.rep[8:12])
}

func (b *Batch) setCount(n uint32) {
	binary.LittleEndian.PutUint32(b.rep[8:12], n)
}

// Sequence returns the base sequence number assigned to the batch.
func (b *Batch) Sequence() uint64 {
	if len(b.rep) < headerLen {
		return 0
	}
	return binary.LittleEndian.Uint64(b.rep[:8])
}

// SetSequence assigns the base sequence number (done by the write path
// when the batch is committed).
func (b *Batch) SetSequence(seq uint64) {
	b.ensureHeader()
	binary.LittleEndian.PutUint64(b.rep[:8], seq)
}

// Empty reports whether no operations are queued.
func (b *Batch) Empty() bool { return b.Count() == 0 }

// Size returns the encoded size in bytes.
func (b *Batch) Size() int {
	if len(b.rep) < headerLen {
		return headerLen
	}
	return len(b.rep)
}

// Reset clears the batch for reuse.
func (b *Batch) Reset() {
	if len(b.rep) >= headerLen {
		b.rep = b.rep[:headerLen]
		for i := range b.rep {
			b.rep[i] = 0
		}
	}
}

// Repr returns the wire encoding. The returned slice aliases the
// batch's buffer.
func (b *Batch) Repr() []byte {
	b.ensureHeader()
	return b.rep
}

// FromRepr wraps an encoded representation (e.g. a WAL payload) as a
// Batch. The slice is retained.
func FromRepr(rep []byte) (*Batch, error) {
	if len(rep) < headerLen {
		return nil, fmt.Errorf("batch: representation too short (%d bytes)", len(rep))
	}
	b := &Batch{rep: rep}
	// Validate by walking all records.
	n := 0
	err := b.Iterate(func(kind keys.Kind, key, value []byte) error {
		n++
		return nil
	})
	if err != nil {
		return nil, err
	}
	if uint32(n) != b.Count() {
		return nil, fmt.Errorf("batch: header count %d != %d records present", b.Count(), n)
	}
	return b, nil
}

// Append concatenates other's operations onto b (used by the write
// path's batch-group leader to merge a group into one WAL record).
func (b *Batch) Append(other *Batch) {
	b.ensureHeader()
	b.setCount(b.Count() + other.Count())
	if len(other.rep) > headerLen {
		b.rep = append(b.rep, other.rep[headerLen:]...)
	}
}

// Iterate calls fn for each operation in order. For KindDelete records
// value is nil.
func (b *Batch) Iterate(fn func(kind keys.Kind, key, value []byte) error) error {
	if len(b.rep) < headerLen {
		return nil
	}
	p := b.rep[headerLen:]
	for len(p) > 0 {
		kind := keys.Kind(p[0])
		p = p[1:]
		key, rest, err := getLengthPrefixed(p)
		if err != nil {
			return fmt.Errorf("batch: bad key: %w", err)
		}
		p = rest
		var value []byte
		switch kind {
		case keys.KindSet:
			value, rest, err = getLengthPrefixed(p)
			if err != nil {
				return fmt.Errorf("batch: bad value: %w", err)
			}
			p = rest
		case keys.KindDelete:
			// no value
		default:
			return fmt.Errorf("batch: unknown record kind %d", kind)
		}
		if err := fn(kind, key, value); err != nil {
			return err
		}
	}
	return nil
}

func getLengthPrefixed(p []byte) (data, rest []byte, err error) {
	n, w := binary.Uvarint(p)
	if w <= 0 {
		return nil, nil, fmt.Errorf("invalid varint")
	}
	p = p[w:]
	if uint64(len(p)) < n {
		return nil, nil, fmt.Errorf("truncated payload: want %d have %d", n, len(p))
	}
	return p[:n], p[n:], nil
}
