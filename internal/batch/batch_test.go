package batch

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"xpointdb/internal/keys"
)

type op struct {
	kind  keys.Kind
	key   []byte
	value []byte
}

func collect(t *testing.T, b *Batch) []op {
	t.Helper()
	var ops []op
	err := b.Iterate(func(kind keys.Kind, key, value []byte) error {
		ops = append(ops, op{kind, append([]byte(nil), key...), append([]byte(nil), value...)})
		return nil
	})
	if err != nil {
		t.Fatalf("Iterate: %v", err)
	}
	return ops
}

func TestEmptyBatch(t *testing.T) {
	var b Batch
	if !b.Empty() || b.Count() != 0 {
		t.Fatal("zero batch should be empty")
	}
	if got := collect(t, &b); len(got) != 0 {
		t.Fatalf("iterate empty = %v", got)
	}
}

func TestPutDeleteRoundTrip(t *testing.T) {
	var b Batch
	b.Put([]byte("a"), []byte("1"))
	b.Delete([]byte("b"))
	b.Put([]byte("c"), []byte("3"))
	if b.Count() != 3 {
		t.Fatalf("Count = %d", b.Count())
	}
	ops := collect(t, &b)
	want := []op{
		{keys.KindSet, []byte("a"), []byte("1")},
		{keys.KindDelete, []byte("b"), nil},
		{keys.KindSet, []byte("c"), []byte("3")},
	}
	if len(ops) != len(want) {
		t.Fatalf("got %d ops", len(ops))
	}
	for i := range want {
		if ops[i].kind != want[i].kind || !bytes.Equal(ops[i].key, want[i].key) || !bytes.Equal(ops[i].value, want[i].value) {
			t.Fatalf("op %d = %+v, want %+v", i, ops[i], want[i])
		}
	}
}

func TestSequence(t *testing.T) {
	var b Batch
	b.Put([]byte("k"), []byte("v"))
	b.SetSequence(12345)
	if b.Sequence() != 12345 {
		t.Fatalf("Sequence = %d", b.Sequence())
	}
}

func TestReprRoundTrip(t *testing.T) {
	var b Batch
	b.SetSequence(99)
	b.Put([]byte("key1"), []byte("value1"))
	b.Delete([]byte("key2"))

	b2, err := FromRepr(append([]byte(nil), b.Repr()...))
	if err != nil {
		t.Fatalf("FromRepr: %v", err)
	}
	if b2.Sequence() != 99 || b2.Count() != 2 {
		t.Fatalf("decoded seq=%d count=%d", b2.Sequence(), b2.Count())
	}
	ops := collect(t, b2)
	if string(ops[0].key) != "key1" || string(ops[0].value) != "value1" || ops[1].kind != keys.KindDelete {
		t.Fatalf("decoded ops = %+v", ops)
	}
}

func TestFromReprRejectsGarbage(t *testing.T) {
	if _, err := FromRepr([]byte("tiny")); err == nil {
		t.Fatal("short repr accepted")
	}
	// Valid header claiming 3 records but no payload.
	bad := make([]byte, 12)
	bad[8] = 3
	if _, err := FromRepr(bad); err == nil {
		t.Fatal("count mismatch accepted")
	}
	// Unknown kind byte.
	var b Batch
	b.Put([]byte("k"), []byte("v"))
	rep := append([]byte(nil), b.Repr()...)
	rep[12] = 0xEE
	if _, err := FromRepr(rep); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestAppendMergesGroups(t *testing.T) {
	var a, b Batch
	a.SetSequence(10)
	a.Put([]byte("a"), []byte("1"))
	b.Put([]byte("b"), []byte("2"))
	b.Delete([]byte("c"))
	a.Append(&b)
	if a.Count() != 3 {
		t.Fatalf("Count after Append = %d", a.Count())
	}
	ops := collect(t, &a)
	if string(ops[2].key) != "c" || ops[2].kind != keys.KindDelete {
		t.Fatalf("appended ops = %+v", ops)
	}
	if a.Sequence() != 10 {
		t.Fatal("Append must not clobber sequence")
	}
}

func TestReset(t *testing.T) {
	var b Batch
	b.SetSequence(5)
	b.Put([]byte("k"), []byte("v"))
	b.Reset()
	if !b.Empty() || b.Sequence() != 0 {
		t.Fatalf("after Reset: count=%d seq=%d", b.Count(), b.Sequence())
	}
	b.Put([]byte("k2"), []byte("v2"))
	if b.Count() != 1 {
		t.Fatal("batch unusable after Reset")
	}
}

func TestSizeGrows(t *testing.T) {
	var b Batch
	s0 := b.Size()
	b.Put([]byte("key"), []byte("value"))
	if b.Size() <= s0 {
		t.Fatal("Size did not grow")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(ks, vs [][]byte) bool {
		var b Batch
		n := len(ks)
		if len(vs) < n {
			n = len(vs)
		}
		for i := 0; i < n; i++ {
			if i%3 == 2 {
				b.Delete(ks[i])
			} else {
				b.Put(ks[i], vs[i])
			}
		}
		b2, err := FromRepr(append([]byte(nil), b.Repr()...))
		if err != nil {
			return false
		}
		if b2.Count() != uint32(n) {
			return false
		}
		i := 0
		ok := true
		b2.Iterate(func(kind keys.Kind, key, value []byte) error {
			if !bytes.Equal(key, ks[i]) {
				ok = false
			}
			if i%3 == 2 {
				if kind != keys.KindDelete {
					ok = false
				}
			} else if !bytes.Equal(value, vs[i]) {
				ok = false
			}
			i++
			return nil
		})
		return ok && i == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLargeBatch(t *testing.T) {
	var b Batch
	for i := 0; i < 10000; i++ {
		b.Put([]byte(fmt.Sprintf("key-%d", i)), bytes.Repeat([]byte{byte(i)}, 100))
	}
	if b.Count() != 10000 {
		t.Fatalf("Count = %d", b.Count())
	}
	if got := len(collect(t, &b)); got != 10000 {
		t.Fatalf("iterated %d", got)
	}
}
