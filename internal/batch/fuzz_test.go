package batch

import (
	"bytes"
	"testing"

	"xpointdb/internal/keys"
)

// FuzzFromRepr feeds arbitrary bytes to the batch wire-format decoder:
// it must accept exactly the reprs whose full record walk succeeds,
// and never panic. Accepted batches must iterate cleanly with the
// advertised count.
func FuzzFromRepr(f *testing.F) {
	var seed Batch
	seed.Put([]byte("key"), []byte("value"))
	seed.Delete([]byte("gone"))
	seed.SetSequence(42)
	f.Add(append([]byte(nil), seed.Repr()...))
	f.Add([]byte{})
	f.Add(make([]byte, 12))           // header only, zero count
	f.Add(append(seed.Repr(), 0xff)) // trailing garbage

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := FromRepr(data)
		if err != nil {
			return
		}
		var n uint32
		werr := b.Iterate(func(kind keys.Kind, key, value []byte) error {
			n++
			if kind != keys.KindSet && kind != keys.KindDelete {
				t.Fatalf("accepted batch yields kind %d", kind)
			}
			return nil
		})
		if werr != nil {
			t.Fatalf("accepted batch fails iteration: %v", werr)
		}
		if n != b.Count() {
			t.Fatalf("accepted batch iterates %d records, Count()=%d", n, b.Count())
		}
		if !bytes.Equal(b.Repr(), data) {
			t.Fatalf("Repr() does not round-trip the accepted input")
		}
	})
}
