package storage

import (
	"testing"
	"time"

	"xpointdb/internal/clock"
	"xpointdb/internal/sim"
)

var t0 = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)

func TestNullDeviceIsFree(t *testing.T) {
	k := sim.New(t0)
	d := New(k, Null())
	k.Run(func() {
		for i := 0; i < 100; i++ {
			d.Read(4096)
			d.Write(4096)
			d.Sync()
		}
	})
	if k.Elapsed() != 0 {
		t.Fatalf("null device charged %v", k.Elapsed())
	}
	st := d.Stats()
	if st.Reads != 100 || st.Writes != 100 || st.Syncs != 100 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBaseLatencyCharged(t *testing.T) {
	k := sim.New(t0)
	d := New(k, Profile{Name: "d", ReadLatency: 10 * time.Microsecond, Parallelism: 1})
	k.Run(func() {
		for i := 0; i < 10; i++ {
			d.Read(4096)
		}
	})
	if got := k.Elapsed(); got != 100*time.Microsecond {
		t.Fatalf("elapsed = %v, want 100µs", got)
	}
}

func TestTransferTimeForLargePayloads(t *testing.T) {
	k := sim.New(t0)
	d := New(k, Profile{
		Name:           "d",
		WriteLatency:   10 * time.Microsecond,
		WriteBandwidth: 1 << 20, // 1 MiB/s
		Parallelism:    1,
	})
	k.Run(func() {
		d.Write(4096 + 1<<20) // 1 MiB beyond the base op
	})
	want := 10*time.Microsecond + time.Second
	if got := k.Elapsed(); got != want {
		t.Fatalf("elapsed = %v, want %v", got, want)
	}
}

func TestParallelismOverlapsService(t *testing.T) {
	// 4 concurrent reads on parallelism 4 take one service time; on
	// parallelism 1 they serialize.
	for _, par := range []int{1, 4} {
		k := sim.New(t0)
		d := New(k, Profile{Name: "d", ReadLatency: 100 * time.Microsecond, Parallelism: par})
		k.Run(func() {
			m := k.NewMutex()
			c := k.NewCond(m)
			left := 4
			for i := 0; i < 4; i++ {
				k.Go("r", func() {
					d.Read(4096)
					m.Lock()
					left--
					if left == 0 {
						c.Broadcast()
					}
					m.Unlock()
				})
			}
			m.Lock()
			for left > 0 {
				c.Wait()
			}
			m.Unlock()
		})
		want := 400 * time.Microsecond
		if par == 4 {
			want = 100 * time.Microsecond
		}
		if got := k.Elapsed(); got != want {
			t.Fatalf("par=%d elapsed=%v want %v", par, got, want)
		}
	}
}

func TestFlashEraseStall(t *testing.T) {
	k := sim.New(t0)
	d := New(k, Profile{
		Name:         "flash",
		WriteLatency: 10 * time.Microsecond,
		Parallelism:  1,
		Flash:        &FlashProfile{EraseLatency: time.Millisecond, EraseEvery: 64 * 1024},
	})
	k.Run(func() {
		for i := 0; i < 32; i++ { // 32 × 4 KiB = 128 KiB → 2 erase stalls
			d.Write(4096)
		}
	})
	st := d.Stats()
	if st.EraseStalls != 2 {
		t.Fatalf("erase stalls = %d, want 2", st.EraseStalls)
	}
	want := 32*10*time.Microsecond + 2*time.Millisecond
	if got := k.Elapsed(); got != want {
		t.Fatalf("elapsed = %v, want %v", got, want)
	}
}

func TestXPointHasNoEraseStalls(t *testing.T) {
	k := sim.New(t0)
	d := New(k, XPoint())
	k.Run(func() {
		for i := 0; i < 1000; i++ {
			d.Write(4096)
		}
	})
	if st := d.Stats(); st.EraseStalls != 0 {
		t.Fatalf("xpoint erased: %+v", st)
	}
}

func TestResetStats(t *testing.T) {
	d := New(clock.Real{}, Null())
	d.Read(10)
	d.ResetStats()
	if st := d.Stats(); st.Reads != 0 {
		t.Fatalf("stats after reset: %+v", st)
	}
}

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"sata", "sata-flash", "pcie", "pcie-flash", "xpoint", "optane", "3dxpoint", "nvm", "null"} {
		if _, ok := ProfileByName(name); !ok {
			t.Errorf("ProfileByName(%q) failed", name)
		}
	}
	if _, ok := ProfileByName("floppy"); ok {
		t.Error("unknown profile resolved")
	}
}

func TestCalibrationRelationships(t *testing.T) {
	// The calibrated profiles must preserve the paper's ordering:
	// XPoint read latency ≪ PCIe flash < SATA flash; XPoint has no
	// erase; flash write latency at device level is not worse than
	// reads (write-back caches).
	sata, pcie, xp := SATAFlash(), PCIeFlash(), XPoint()
	if !(xp.ReadLatency < pcie.ReadLatency && pcie.ReadLatency < sata.ReadLatency) {
		t.Fatal("read latency ordering broken")
	}
	if xp.Flash != nil {
		t.Fatal("xpoint must not have a flash FTL model")
	}
	if sata.Flash == nil || pcie.Flash == nil {
		t.Fatal("flash devices need the FTL model")
	}
	if sata.ReadLatency < 10*xp.ReadLatency {
		t.Fatal("SATA/XPoint read gap should be at least 10×")
	}
}

func TestRawFig1Calibration(t *testing.T) {
	// The raw-device experiment behind Figure 1: 8 workers, 1:1 mix
	// of 4 KiB ops. The paper's speedup is 15.7×; the models should
	// land within a factor of ~2 of that.
	tp := func(p Profile) float64 {
		k := sim.New(t0)
		d := New(k, p)
		var ops int64
		k.Run(func() {
			m := k.NewMutex()
			c := k.NewCond(m)
			left := 8
			for w := 0; w < 8; w++ {
				w := w
				k.Go("w", func() {
					end := t0.Add(2 * time.Second)
					i := 0
					for k.Now().Before(end) {
						if (i+w)%2 == 0 {
							d.Read(4096)
						} else {
							d.Write(4096)
						}
						i++
					}
					m.Lock()
					ops += int64(i)
					left--
					if left == 0 {
						c.Broadcast()
					}
					m.Unlock()
				})
			}
			m.Lock()
			for left > 0 {
				c.Wait()
			}
			m.Unlock()
		})
		return float64(ops) / k.Elapsed().Seconds()
	}
	sata := tp(SATAFlash())
	xp := tp(XPoint())
	speedup := xp / sata
	if speedup < 8 || speedup > 32 {
		t.Fatalf("raw speedup = %.1f×, want ≈15.7× (sata %.0f, xpoint %.0f op/s)", speedup, sata, xp)
	}
	t.Logf("raw: sata=%.1f kop/s xpoint=%.1f kop/s speedup=%.1f×", sata/1000, xp/1000, speedup)
}
