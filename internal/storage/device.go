// Package storage models block storage devices with calibrated latency,
// bandwidth, bounded internal parallelism, and — for NAND flash — an
// FTL erase/garbage-collection model. It substitutes for the three
// physical SSDs of the paper (Intel 530 SATA flash, Intel 750 PCIe
// flash, Intel Optane 900P 3D XPoint) plus the DRAM-emulated NVM device
// used in case study C.
//
// A Device charges time to the clock it was created with: under the
// simulation kernel this is exact virtual time; under the real clock it
// is a precise real sleep. Operations first acquire one of the device's
// internal-parallelism slots (queueing when all are busy — this is how
// device-level interference emerges) and then hold the slot for the
// op's service time.
package storage

import (
	"fmt"
	"sync"
	"time"

	"xpointdb/internal/clock"
)

// Profile describes a device's performance characteristics.
type Profile struct {
	// Name identifies the device in output ("sata-flash", ...).
	Name string

	// ReadLatency and WriteLatency are the base service times of a
	// single small (≤4 KiB) read or write.
	ReadLatency  time.Duration
	WriteLatency time.Duration

	// ReadBandwidth and WriteBandwidth, in bytes/second, govern the
	// transfer-time component added for payloads beyond the base op.
	ReadBandwidth  int64
	WriteBandwidth int64

	// SyncLatency is the extra cost of a cache-flush barrier.
	SyncLatency time.Duration

	// Parallelism is the number of operations the device can service
	// concurrently (channels/dies/queue lanes).
	Parallelism int

	// Flash, if non-nil, enables the NAND erase/GC model.
	Flash *FlashProfile
}

// FlashProfile models NAND-flash background cost: after EraseEvery
// bytes of writes have accumulated, the next write additionally pays
// EraseLatency (a blocked-on-erase/GC stall). This produces the
// characteristic flash behaviour the paper leans on: writes are cheap
// until garbage collection intrudes, and co-scheduled reads queue
// behind the stall.
type FlashProfile struct {
	EraseLatency time.Duration
	EraseEvery   int64
}

// Stats is a snapshot of device activity counters.
type Stats struct {
	Reads      int64
	Writes     int64
	Syncs      int64
	ReadBytes  int64
	WriteBytes int64
	// BusyTime is the cumulative service time charged (across slots).
	BusyTime time.Duration
	// EraseStalls counts writes that paid the flash erase penalty.
	EraseStalls int64
}

// Device is a simulated block device. Create one with New.
type Device struct {
	prof  Profile
	clk   clock.Clock
	slots *clock.Semaphore

	mu              sync.Mutex
	stats           Stats
	bytesSinceErase int64
}

// New returns a device with the given profile, charging time to clk.
func New(clk clock.Clock, prof Profile) *Device {
	if prof.Parallelism <= 0 {
		prof.Parallelism = 1
	}
	return &Device{
		prof:  prof,
		clk:   clk,
		slots: clock.NewSemaphore(clk, prof.Parallelism),
	}
}

// Profile returns the device's profile.
func (d *Device) Profile() Profile { return d.prof }

// Name returns the profile name.
func (d *Device) Name() string { return d.prof.Name }

// Read charges the service time of reading n bytes.
func (d *Device) Read(n int) {
	lat := transfer(d.prof.ReadLatency, n, d.prof.ReadBandwidth)
	d.serve(lat)
	d.mu.Lock()
	d.stats.Reads++
	d.stats.ReadBytes += int64(n)
	d.stats.BusyTime += lat
	d.mu.Unlock()
}

// Write charges the service time of writing n bytes, including any
// flash erase stall that has come due.
func (d *Device) Write(n int) {
	lat := transfer(d.prof.WriteLatency, n, d.prof.WriteBandwidth)
	stalled := false
	if f := d.prof.Flash; f != nil && f.EraseEvery > 0 {
		d.mu.Lock()
		d.bytesSinceErase += int64(n)
		if d.bytesSinceErase >= f.EraseEvery {
			d.bytesSinceErase -= f.EraseEvery
			lat += f.EraseLatency
			stalled = true
		}
		d.mu.Unlock()
	}
	d.serve(lat)
	d.mu.Lock()
	d.stats.Writes++
	d.stats.WriteBytes += int64(n)
	d.stats.BusyTime += lat
	if stalled {
		d.stats.EraseStalls++
	}
	d.mu.Unlock()
}

// Sync charges a write-cache flush barrier.
func (d *Device) Sync() {
	d.serve(d.prof.SyncLatency)
	d.mu.Lock()
	d.stats.Syncs++
	d.stats.BusyTime += d.prof.SyncLatency
	d.mu.Unlock()
}

// QueueDepth reports how many operations are currently waiting for a
// device slot (not including those in service).
func (d *Device) QueueDepth() int { return d.slots.Waiters() }

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the counters (not the FTL state).
func (d *Device) ResetStats() {
	d.mu.Lock()
	d.stats = Stats{}
	d.mu.Unlock()
}

func (d *Device) serve(lat time.Duration) {
	if lat <= 0 {
		return
	}
	d.slots.Acquire()
	d.clk.Sleep(lat)
	d.slots.Release()
}

func transfer(base time.Duration, n int, bw int64) time.Duration {
	lat := base
	if bw > 0 && n > baseOpSize {
		extra := int64(n-baseOpSize) * int64(time.Second) / bw
		lat += time.Duration(extra)
	}
	return lat
}

// baseOpSize is the payload already covered by the base latency.
const baseOpSize = 4096

func (s Stats) String() string {
	return fmt.Sprintf("reads=%d (%.1f MiB) writes=%d (%.1f MiB) syncs=%d busy=%v eraseStalls=%d",
		s.Reads, float64(s.ReadBytes)/(1<<20),
		s.Writes, float64(s.WriteBytes)/(1<<20),
		s.Syncs, s.BusyTime, s.EraseStalls)
}
