package storage

import "time"

// The profiles below are calibrated against the paper's raw-device
// measurements (Intel Open Storage Toolkit, 4 KB random, 8 threads,
// 1:1 read/write — Figure 1: 26 kop/s on the Intel 530 SATA SSD versus
// 408 kop/s on the Optane 900P) and the latency relationships the paper
// reports (read latency on 3D XPoint several times lower than flash;
// write latency comparable across devices until queueing intrudes;
// flash pays periodic GC/erase stalls). Absolute spec-sheet numbers are
// not the goal — the paper itself only argues from relative behaviour.

// SATAFlash models an Intel 530-class SATA NAND SSD.
func SATAFlash() Profile {
	return Profile{
		Name:           "sata-flash",
		ReadLatency:    170 * time.Microsecond,
		WriteLatency:   90 * time.Microsecond,
		ReadBandwidth:  500 << 20, // 500 MiB/s
		WriteBandwidth: 400 << 20,
		SyncLatency:    60 * time.Microsecond,
		Parallelism:    4,
		Flash: &FlashProfile{
			EraseLatency: 2500 * time.Microsecond,
			EraseEvery:   1 << 20, // one 2.5 ms stall per MiB written
		},
	}
}

// PCIeFlash models an Intel 750-class NVMe NAND SSD.
func PCIeFlash() Profile {
	return Profile{
		Name:           "pcie-flash",
		ReadLatency:    90 * time.Microsecond,
		WriteLatency:   25 * time.Microsecond,
		ReadBandwidth:  2200 << 20,
		WriteBandwidth: 900 << 20,
		SyncLatency:    25 * time.Microsecond,
		Parallelism:    16,
		Flash: &FlashProfile{
			EraseLatency: 2500 * time.Microsecond,
			EraseEvery:   4 << 20,
		},
	}
}

// XPoint models an Intel Optane 900P-class 3D XPoint SSD: low latency,
// no read/write disparity, no erase-before-write, moderate internal
// parallelism (seven-channel controller).
func XPoint() Profile {
	return Profile{
		Name:           "3dxpoint",
		ReadLatency:    14 * time.Microsecond,
		WriteLatency:   16 * time.Microsecond,
		ReadBandwidth:  2500 << 20,
		WriteBandwidth: 2000 << 20,
		SyncLatency:    5 * time.Microsecond,
		Parallelism:    7,
	}
}

// NVM models byte-addressable non-volatile memory reachable at
// DRAM-like latency (the paper emulates it with Linux tmpfs). Used as
// the WAL device in case study C.
func NVM() Profile {
	return Profile{
		Name:           "nvm",
		ReadLatency:    1 * time.Microsecond,
		WriteLatency:   2 * time.Microsecond,
		ReadBandwidth:  10 << 30,
		WriteBandwidth: 8 << 30,
		SyncLatency:    500 * time.Nanosecond,
		Parallelism:    8,
	}
}

// Null is a zero-latency device for unit tests: all operations are
// free and never block.
func Null() Profile {
	return Profile{Name: "null", Parallelism: 64}
}

// Scaled returns a copy of p with transfer bandwidth and the flash
// erase interval divided by f.
//
// Rationale: the experiments scale the paper's dataset (100 GB,
// 64 MB memtables) down by a size factor to fit simulation memory.
// Small-op latency must stay real (a 4 KB read on Optane is still
// ~14 µs), but bulk work — flush, compaction, GC — must shrink in
// *time* proportionally to the shrunken sizes, or background work
// becomes unrealistically fast relative to foreground traffic and the
// paper's stall dynamics (Figures 4/5/18) vanish. Dividing bandwidth
// by the same size factor keeps the background:foreground balance of
// the paper's testbed: a scaled flush takes as long as the real flush
// did.
func (p Profile) Scaled(f float64) Profile {
	if f <= 1 {
		return p
	}
	p.ReadBandwidth = int64(float64(p.ReadBandwidth) / f)
	p.WriteBandwidth = int64(float64(p.WriteBandwidth) / f)
	if p.Flash != nil {
		fp := *p.Flash
		fp.EraseEvery = int64(float64(fp.EraseEvery) / f)
		if fp.EraseEvery < 1 {
			fp.EraseEvery = 1
		}
		p.Flash = &fp
	}
	return p
}

// ProfileByName resolves a profile by its Name field. It returns the
// zero Profile and false if the name is unknown.
func ProfileByName(name string) (Profile, bool) {
	switch name {
	case "sata-flash", "sata":
		return SATAFlash(), true
	case "pcie-flash", "pcie":
		return PCIeFlash(), true
	case "3dxpoint", "xpoint", "optane":
		return XPoint(), true
	case "nvm":
		return NVM(), true
	case "null":
		return Null(), true
	}
	return Profile{}, false
}
