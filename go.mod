module xpointdb

go 1.23
