GO ?= go

# Tier-3 knobs: iterations of the seeded crash-consistency torture
# harness and the per-target budget for the native fuzz targets.
TORTURE_ITERS ?= 50
FUZZTIME ?= 10s

.PHONY: all tier1 tier2 tier3 bench-observability bench-smoke bench-sharded-smoke bench-compaction-smoke obs-smoke

all: tier1

# Tier-1: the acceptance gate every change must keep green.
tier1:
	$(GO) build ./... && $(GO) test ./...

# Tier-2: vet plus the full suite under the race detector. Exercises
# the concurrent metrics/snapshot/event paths (see
# internal/engine/observe_test.go and internal/events).
tier2:
	$(GO) vet ./... && $(GO) test -race ./...

# Tier-3: crash-consistency and robustness. Runs the seeded torture
# harness in all four modes — crash (random workload + fault
# injection + crash at a random fs-op boundary + reopen +
# durability-contract verification), transient (faults heal; the
# engine must auto-recover on the same handle with zero acked-write
# loss), bitrot (silent bit flips on SST reads; every corruption
# must be detected and repaired or reported, never served), and
# enospc (the disk-space quota squeezes below usage and releases;
# wait-for-space recovery must heal the same handle with zero acked
# loss, reads serving throughout, and a bounded honest giveup when
# space never frees). Failing seeds are printed and reproducible with
# `go run ./cmd/torture -seed N [-transient|-bitrot|-enospc]`. Also
# runs a bounded pass of every native fuzz target over the committed
# corpora (regenerate with `go run ./cmd/genfuzzcorpus`).
# The sharded run adds the cross-shard atomic-batch (2PC) contract on
# top: no crash point may expose a torn cross-shard batch, and every
# acknowledged one must survive in full. Repro failing seeds with
# `go run ./cmd/torture -seed N -shards S`.
tier3:
	$(GO) test ./internal/engine -run 'TestTorture(CrashRecovery|TransientRecovery|BitrotRecovery|EnospcRecovery)' -count=1 \
		-args -torture.iters=$(TORTURE_ITERS)
	$(GO) test ./internal/shardeddb -run TestTortureSharded -count=1 \
		-args -torture.iters=$(TORTURE_ITERS)
	$(GO) test ./internal/wal -run '^$$' -fuzz '^FuzzReadRecord$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/wal -run '^$$' -fuzz '^FuzzWriterReaderRoundTrip$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/sstable -run '^$$' -fuzz '^FuzzBlockIter$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/sstable -run '^$$' -fuzz '^FuzzTableReader$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/batch -run '^$$' -fuzz '^FuzzFromRepr$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/manifest -run '^$$' -fuzz '^FuzzDecodeEdit$$' -fuzztime $(FUZZTIME)

# A quick mixed-workload sanity run on the simulated 3D XPoint device:
# concurrent reader and writer pools against one store, the shape the
# SuperVersion read path is optimized for. Short enough for CI; the
# full before/after numbers live in BENCH_superversion.json.
bench-smoke:
	$(GO) run ./cmd/dbbench -device xpoint -benchmarks mixed -threads 8 -duration 5s

# Sharded smoke: the range-sharded store on the simulated device —
# mixed workload across 4 shards (shared cache/pool/controller), then
# a zipfian hot-shard run showing the skewed load landing on shard 0
# while the shared stall budget leaves cold shards unthrottled. The
# full shards 1/4/8 matrix and the bare-vs-shards=1 overhead numbers
# live in BENCH_sharded.json.
bench-sharded-smoke:
	$(GO) run ./cmd/dbbench -device xpoint -shards 4 -benchmarks mixed -threads 8 -duration 3s
	$(GO) run ./cmd/dbbench -device xpoint -shards 4 -hot_shard_skew 1.3 \
		-benchmarks readrandomwriterandom -threads 8 -duration 2s -num 8000

# Compaction smoke: fillrandom on the simulated device at
# max_subcompactions 1 vs 4, printing the BENCH_compaction summary
# line (throughput, write-stall delay, post-window L0 drain) and
# failing if the fan-out run never split a compaction. The full
# device x fan-out matrix behind BENCH_compaction.json is
# scripts/bench_compaction.sh without --smoke.
bench-compaction-smoke:
	bash scripts/bench_compaction.sh --smoke

# Ops-plane smoke: run dbbench on a real directory with -serve and
# curl every HTTP endpoint (/healthz, /metrics, /stats, /events SSE,
# the dashboard page) while the benchmark is live.
obs-smoke:
	bash scripts/obs_smoke.sh

# Re-measure the write-path instrumentation overhead recorded in
# BENCH_observability.json (fillrandom on the simulated device, bare
# vs. fully instrumented).
bench-observability:
	$(GO) run ./cmd/dbbench -device xpoint -benchmarks fillrandom -threads 4 -duration 30s
	$(GO) run ./cmd/dbbench -device xpoint -benchmarks fillrandom -threads 4 -duration 30s \
		-perf -stats -eventlog /tmp/xpointdb-bench.events
