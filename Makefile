GO ?= go

.PHONY: all tier1 tier2 bench-observability

all: tier1

# Tier-1: the acceptance gate every change must keep green.
tier1:
	$(GO) build ./... && $(GO) test ./...

# Tier-2: vet plus the full suite under the race detector. Exercises
# the concurrent metrics/snapshot/event paths (see
# internal/engine/observe_test.go and internal/events).
tier2:
	$(GO) vet ./... && $(GO) test -race ./...

# Re-measure the write-path instrumentation overhead recorded in
# BENCH_observability.json (fillrandom on the simulated device, bare
# vs. fully instrumented).
bench-observability:
	$(GO) run ./cmd/dbbench -device xpoint -benchmarks fillrandom -threads 4 -duration 30s
	$(GO) run ./cmd/dbbench -device xpoint -benchmarks fillrandom -threads 4 -duration 30s \
		-perf -stats -eventlog /tmp/xpointdb-bench.events
